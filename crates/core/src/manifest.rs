//! Checkpoint manifests and chunk payloads.
//!
//! A checkpoint is a **manifest** object plus N **chunk** objects in the
//! store. The manifest is self-describing: identity, kind (full or
//! incremental), the base pointer for chain restoration, quantization
//! scheme, model geometry, the (tiny) MLP parameters inline, the reader
//! state, and the list of chunk keys with checksums. Chunks carry batches of
//! embedding rows: indices, optional optimizer state, and quantized
//! payloads. Everything is checksummed (see [`crate::wire`]).
//!
//! **Wire versions.** From wire v3 on, every *stored* object — manifest
//! and chunk alike — is wrapped in the self-describing checksummed
//! envelope of [`cnr_storage::envelope`] (magic `CNR3`, CRC-32 over the
//! payload). The payload inside the envelope is the unchanged v2
//! encoding, so migration is sniffing: [`Manifest::decode`] and
//! [`ChunkPayload::decode`] accept both enveloped (v3) and bare legacy
//! (v2) bytes, while the write path emits v3 only (via
//! [`Manifest::encode_enveloped`] / [`ChunkPayload::encode_enveloped`]).

use crate::error::{CnrError, Result};
use crate::wire;
use bytes::BufMut;
use cnr_storage::envelope;
use cnr_quant::{QuantScheme, QuantizedRow};
use cnr_reader::ReaderState;
use serde::{Deserialize, Serialize};

/// Monotonically increasing checkpoint identity within a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CheckpointId(pub u64);

impl std::fmt::Display for CheckpointId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ckpt-{:08}", self.0)
    }
}

/// Full baseline or incremental delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckpointKind {
    /// Contains every embedding row.
    Full,
    /// Contains only rows modified relative to `base`.
    Incremental,
}

/// Geometry of one embedding table as stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableMeta {
    /// Row count.
    pub rows: u64,
    /// Embedding dimension.
    pub dim: u16,
    /// Whether rows carry a row-wise optimizer accumulator.
    pub has_optimizer_state: bool,
}

/// One stored chunk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkMeta {
    /// Object key in the store.
    pub key: String,
    /// Writer host (shard) that produced and uploaded the chunk.
    pub shard: u16,
    /// Embedding rows in the chunk.
    pub rows: u32,
    /// Serialized size in bytes.
    pub bytes: u64,
    /// Multipart parts the chunk was uploaded in (1 = single part).
    pub parts: u32,
    /// Table the chunk's rows belong to ([`ChunkMeta::UNKNOWN_TABLE`] for
    /// manifests written before wire v3, which did not record row ranges).
    pub table: u16,
    /// Lowest row index in the chunk (wire v3; `u32::MAX` when unknown).
    pub first_row: u32,
    /// Highest row index in the chunk (wire v3; `u32::MAX` when unknown).
    pub last_row: u32,
}

impl ChunkMeta {
    /// Sentinel `table` value for pre-v3 manifests that did not record
    /// which table/rows a chunk covers.
    pub const UNKNOWN_TABLE: u16 = u16::MAX;

    /// The `(table, first_row..=last_row)` range this chunk covers, when
    /// the manifest recorded it (wire v3+). Priority planning needs this to
    /// rank chunks by access heat; pre-v3 chunks rank conservatively hot.
    pub fn row_range(&self) -> Option<(u16, u32, u32)> {
        (self.table != Self::UNKNOWN_TABLE).then_some((self.table, self.first_row, self.last_row))
    }
}

/// Per-writer-host summary of a sharded checkpoint (§4.4: every trainer
/// host uploads its own row-range of every table in parallel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMeta {
    /// Writer host index.
    pub host: u16,
    /// Embedding rows this host stored.
    pub rows: u64,
    /// Chunks this host stored.
    pub chunks: u32,
    /// Payload bytes this host stored.
    pub bytes: u64,
    /// Multipart parts this host uploaded.
    pub parts: u32,
}

/// The checkpoint manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Checkpoint identity.
    pub id: CheckpointId,
    /// Full or incremental.
    pub kind: CheckpointKind,
    /// Checkpoint this delta applies on top of (`None` for full).
    pub base: Option<CheckpointId>,
    /// Trainer iteration at snapshot time.
    pub iteration: u64,
    /// Reader position at snapshot time (§4.1: gap-free by construction).
    pub reader_state: ReaderState,
    /// Quantization scheme of the chunk payloads.
    pub scheme: QuantScheme,
    /// Table geometry, index-aligned with the model.
    pub tables: Vec<TableMeta>,
    /// Flattened bottom-MLP parameters (FP32; MLPs are <1% of bytes).
    pub bottom_mlp: Vec<f32>,
    /// Flattened top-MLP parameters.
    pub top_mlp: Vec<f32>,
    /// Stored chunks, ordered by (shard, per-shard sequence). Chunks of one
    /// checkpoint cover disjoint rows, so application order across chunks
    /// is immaterial; the ordering is for determinism.
    pub chunks: Vec<ChunkMeta>,
    /// Per-writer-host summaries, ascending by host. A single-host write
    /// has exactly one entry; a write that lost hosts mid-upload lists only
    /// the hosts whose chunks the manifest references.
    pub shards: Vec<ShardMeta>,
    /// Total chunk payload bytes.
    pub payload_bytes: u64,
}

const MAGIC: u32 = 0x434E_524D; // "CNRM"
/// Current manifest body version. v3 added per-chunk row ranges
/// (`table`/`first_row`/`last_row`) so the read planner can rank chunks by
/// access heat; v2 bodies still decode, with those fields set to their
/// unknown sentinels.
const VERSION: u16 = 3;
const VERSION_V2: u16 = 2;

/// Strips (and verifies) a v3 envelope when present; legacy bytes pass
/// through untouched. Every decode path funnels through this, so a
/// corrupt envelope surfaces as [`CnrError::Corrupt`] at every read site.
fn open_envelope(data: &[u8]) -> Result<&[u8]> {
    envelope::open(data).map_err(|e| CnrError::Corrupt(e.to_string()))
}

impl Manifest {
    /// Storage key for a manifest of checkpoint `id` under `job`.
    pub fn key(job: &str, id: CheckpointId) -> String {
        format!("{job}/{id}/manifest")
    }

    /// Storage key for chunk `seq` uploaded by writer host `shard` of
    /// checkpoint `id` under `job`. The shard is padded to the full `u16`
    /// width so keys sort lexicographically in (shard, seq) order for any
    /// permitted host count.
    pub fn chunk_key(job: &str, id: CheckpointId, shard: u16, seq: u32) -> String {
        format!("{job}/{id}/shard-{shard:05}-chunk-{seq:06}")
    }

    /// Serializes the manifest (framed + checksummed).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.put_u64_le(self.id.0);
        body.put_u8(match self.kind {
            CheckpointKind::Full => 0,
            CheckpointKind::Incremental => 1,
        });
        body.put_u64_le(self.base.map(|b| b.0).unwrap_or(u64::MAX));
        body.put_u64_le(self.iteration);
        body.put_u64_le(self.reader_state.next_batch);
        encode_scheme(&mut body, &self.scheme);
        body.put_u16_le(self.tables.len() as u16);
        for t in &self.tables {
            body.put_u64_le(t.rows);
            body.put_u16_le(t.dim);
            body.put_u8(t.has_optimizer_state as u8);
        }
        wire::put_f32s(&mut body, &self.bottom_mlp);
        wire::put_f32s(&mut body, &self.top_mlp);
        body.put_u32_le(self.chunks.len() as u32);
        for c in &self.chunks {
            wire::put_string(&mut body, &c.key);
            body.put_u16_le(c.shard);
            body.put_u32_le(c.rows);
            body.put_u64_le(c.bytes);
            body.put_u32_le(c.parts);
            body.put_u16_le(c.table);
            body.put_u32_le(c.first_row);
            body.put_u32_le(c.last_row);
        }
        body.put_u16_le(self.shards.len() as u16);
        for s in &self.shards {
            body.put_u16_le(s.host);
            body.put_u64_le(s.rows);
            body.put_u32_le(s.chunks);
            body.put_u64_le(s.bytes);
            body.put_u32_le(s.parts);
        }
        body.put_u64_le(self.payload_bytes);

        let mut out = Vec::with_capacity(body.len() + 32);
        out.put_u32_le(MAGIC);
        out.put_u16_le(VERSION);
        wire::put_framed(&mut out, &body);
        out
    }

    /// Serializes the manifest wrapped in the v3 storage envelope — the
    /// bytes the write path actually stores.
    pub fn encode_enveloped(&self) -> Vec<u8> {
        envelope::wrap_with_flags(&self.encode(), envelope::FLAG_MANIFEST)
    }

    /// Parses and verifies a serialized manifest: v3 (enveloped) or bare
    /// legacy v2 bytes.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let mut data = open_envelope(data)?;
        let buf = &mut data;
        let magic = wire::get_u32(buf)?;
        if magic != MAGIC {
            return Err(CnrError::Corrupt(format!("bad manifest magic {magic:#x}")));
        }
        let version = wire::get_u16(buf)?;
        if version != VERSION && version != VERSION_V2 {
            return Err(CnrError::Corrupt(format!(
                "unsupported manifest version {version}"
            )));
        }
        let body = wire::get_framed(buf)?;
        let mut slice = body.as_slice();
        let b = &mut slice;

        let id = CheckpointId(wire::get_u64(b)?);
        let kind = match wire::get_u8(b)? {
            0 => CheckpointKind::Full,
            1 => CheckpointKind::Incremental,
            k => return Err(CnrError::Corrupt(format!("bad checkpoint kind {k}"))),
        };
        let base_raw = wire::get_u64(b)?;
        let base = (base_raw != u64::MAX).then_some(CheckpointId(base_raw));
        let iteration = wire::get_u64(b)?;
        let reader_state = ReaderState::at(wire::get_u64(b)?);
        let scheme = decode_scheme(b)?;
        let table_count = wire::get_u16(b)? as usize;
        let mut tables = Vec::with_capacity(table_count);
        for _ in 0..table_count {
            tables.push(TableMeta {
                rows: wire::get_u64(b)?,
                dim: wire::get_u16(b)?,
                has_optimizer_state: wire::get_u8(b)? != 0,
            });
        }
        let bottom_mlp = wire::get_f32s(b)?;
        let top_mlp = wire::get_f32s(b)?;
        let chunk_count = wire::get_u32(b)? as usize;
        let mut chunks = Vec::with_capacity(chunk_count);
        for _ in 0..chunk_count {
            let key = wire::get_string(b)?;
            let shard = wire::get_u16(b)?;
            let rows = wire::get_u32(b)?;
            let bytes = wire::get_u64(b)?;
            let parts = wire::get_u32(b)?;
            // v2 manifests did not record row ranges; leave the sentinels
            // so priority planning treats the chunk as unranked.
            let (table, first_row, last_row) = if version >= VERSION {
                (wire::get_u16(b)?, wire::get_u32(b)?, wire::get_u32(b)?)
            } else {
                (ChunkMeta::UNKNOWN_TABLE, u32::MAX, u32::MAX)
            };
            chunks.push(ChunkMeta {
                key,
                shard,
                rows,
                bytes,
                parts,
                table,
                first_row,
                last_row,
            });
        }
        let shard_count = wire::get_u16(b)? as usize;
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            shards.push(ShardMeta {
                host: wire::get_u16(b)?,
                rows: wire::get_u64(b)?,
                chunks: wire::get_u32(b)?,
                bytes: wire::get_u64(b)?,
                parts: wire::get_u32(b)?,
            });
        }
        let payload_bytes = wire::get_u64(b)?;

        Ok(Self {
            id,
            kind,
            base,
            iteration,
            reader_state,
            scheme,
            tables,
            bottom_mlp,
            top_mlp,
            chunks,
            shards,
            payload_bytes,
        })
    }

    /// Total bytes of this checkpoint as stored (manifest + chunks). The
    /// manifest is stored enveloped, so the envelope header is included.
    pub fn total_bytes(&self) -> u64 {
        self.payload_bytes + self.encode_enveloped().len() as u64
    }
}

/// One chunk of embedding rows as stored.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkPayload {
    /// Which table the rows belong to.
    pub table: u16,
    /// Row indices within the table, ascending.
    pub row_indices: Vec<u32>,
    /// Row-wise optimizer accumulators (present iff the table has them).
    pub optimizer_state: Option<Vec<f32>>,
    /// Quantized row payloads, index-aligned with `row_indices`.
    pub rows: Vec<QuantizedRow>,
}

impl ChunkPayload {
    /// Serializes the chunk (framed + checksummed).
    ///
    /// The per-row fixed header (kind/bits/dim) is hoisted to chunk level —
    /// every row of a chunk shares one scheme and one table geometry, and at
    /// 2-bit/dim-64 a redundant 4-byte per-row header would cost ~14% of
    /// the chunk (the §6.3.2 "metadata structure" the paper flags for
    /// optimization).
    pub fn encode(&self) -> Vec<u8> {
        debug_assert_eq!(self.rows.len(), self.row_indices.len());
        if let Some(acc) = &self.optimizer_state {
            debug_assert_eq!(acc.len(), self.row_indices.len());
        }
        let mut body = Vec::new();
        body.put_u16_le(self.table);
        body.put_u32_le(self.row_indices.len() as u32);
        body.put_u8(self.optimizer_state.is_some() as u8);
        // Chunk-level row context: all rows share kind/bits/dim.
        let (tag, bits, dim) = match self.rows.first() {
            Some(r) => (r.kind_tag(), r.bits, r.dim as u16),
            None => (0, 32, 0),
        };
        debug_assert!(
            self.rows
                .iter()
                .all(|r| r.kind_tag() == tag && r.bits == bits && r.dim as u16 == dim),
            "chunk mixes row encodings"
        );
        body.put_u8(tag);
        body.put_u8(bits);
        body.put_u16_le(dim);
        for &i in &self.row_indices {
            body.put_u32_le(i);
        }
        if let Some(acc) = &self.optimizer_state {
            for &a in acc {
                body.put_f32_le(a);
            }
        }
        for row in &self.rows {
            row.encode_body_into(&mut body);
        }
        let mut out = Vec::with_capacity(body.len() + 16);
        wire::put_framed(&mut out, &body);
        out
    }

    /// Serializes the chunk wrapped in the v3 storage envelope — the
    /// bytes the write path actually stores.
    pub fn encode_enveloped(&self) -> Vec<u8> {
        envelope::wrap(&self.encode())
    }

    /// Parses and verifies a serialized chunk: v3 (enveloped) or bare
    /// legacy v2 bytes.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let mut data = open_envelope(data)?;
        let body = wire::get_framed(&mut data)?;
        let mut slice = body.as_slice();
        let b = &mut slice;
        let table = wire::get_u16(b)?;
        let count = wire::get_u32(b)? as usize;
        let has_acc = wire::get_u8(b)? != 0;
        let tag = wire::get_u8(b)?;
        let bits = wire::get_u8(b)?;
        let dim = wire::get_u16(b)? as usize;
        let mut row_indices = Vec::with_capacity(count);
        for _ in 0..count {
            row_indices.push(wire::get_u32(b)?);
        }
        let optimizer_state = if has_acc {
            let mut acc = Vec::with_capacity(count);
            for _ in 0..count {
                if b.len() < 4 {
                    return Err(CnrError::Corrupt("chunk optimizer state truncated".into()));
                }
                let mut bytes = [0u8; 4];
                bytes.copy_from_slice(&b[..4]);
                *b = &b[4..];
                acc.push(f32::from_le_bytes(bytes));
            }
            Some(acc)
        } else {
            None
        };
        let mut rows = Vec::with_capacity(count);
        for _ in 0..count {
            rows.push(QuantizedRow::decode_body_from(b, tag, bits, dim)?);
        }
        Ok(Self {
            table,
            row_indices,
            optimizer_state,
            rows,
        })
    }
}

/// Serializes a [`QuantScheme`] (tag + parameters). Shared with the WAL
/// delta-record codec ([`crate::delta_log`]).
pub(crate) fn encode_scheme(buf: &mut Vec<u8>, scheme: &QuantScheme) {
    match *scheme {
        QuantScheme::Fp32 => buf.put_u8(0),
        QuantScheme::Fp16 => buf.put_u8(5),
        QuantScheme::Symmetric { bits } => {
            buf.put_u8(1);
            buf.put_u8(bits);
        }
        QuantScheme::Asymmetric { bits } => {
            buf.put_u8(2);
            buf.put_u8(bits);
        }
        QuantScheme::KMeans { bits } => {
            buf.put_u8(3);
            buf.put_u8(bits);
        }
        QuantScheme::AdaptiveAsymmetric {
            bits,
            num_bins,
            ratio,
        } => {
            buf.put_u8(4);
            buf.put_u8(bits);
            buf.put_u32_le(num_bins);
            buf.put_f64_le(ratio);
        }
    }
}

/// Parses a [`QuantScheme`].
pub(crate) fn decode_scheme(b: &mut &[u8]) -> Result<QuantScheme> {
    Ok(match wire::get_u8(b)? {
        0 => QuantScheme::Fp32,
        1 => QuantScheme::Symmetric {
            bits: wire::get_u8(b)?,
        },
        2 => QuantScheme::Asymmetric {
            bits: wire::get_u8(b)?,
        },
        3 => QuantScheme::KMeans {
            bits: wire::get_u8(b)?,
        },
        4 => QuantScheme::AdaptiveAsymmetric {
            bits: wire::get_u8(b)?,
            num_bins: wire::get_u32(b)?,
            ratio: wire::get_f64(b)?,
        },
        5 => QuantScheme::Fp16,
        t => return Err(CnrError::Corrupt(format!("bad scheme tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> Manifest {
        Manifest {
            id: CheckpointId(42),
            kind: CheckpointKind::Incremental,
            base: Some(CheckpointId(40)),
            iteration: 123_456,
            reader_state: ReaderState::at(123_456),
            scheme: QuantScheme::AdaptiveAsymmetric {
                bits: 4,
                num_bins: 45,
                ratio: 1.0,
            },
            tables: vec![
                TableMeta {
                    rows: 1000,
                    dim: 16,
                    has_optimizer_state: false,
                },
                TableMeta {
                    rows: 500,
                    dim: 16,
                    has_optimizer_state: false,
                },
            ],
            bottom_mlp: vec![0.5, -0.25, 0.125],
            top_mlp: vec![1.0, 2.0],
            chunks: vec![
                ChunkMeta {
                    key: "job/ckpt-00000042/shard-000-chunk-000000".into(),
                    shard: 0,
                    rows: 4096,
                    bytes: 65536,
                    parts: 2,
                    table: 0,
                    first_row: 0,
                    last_row: 4095,
                },
                ChunkMeta {
                    key: "job/ckpt-00000042/shard-001-chunk-000000".into(),
                    shard: 1,
                    rows: 100,
                    bytes: 1600,
                    parts: 1,
                    table: 1,
                    first_row: 400,
                    last_row: 499,
                },
            ],
            shards: vec![
                ShardMeta {
                    host: 0,
                    rows: 4096,
                    chunks: 1,
                    bytes: 65536,
                    parts: 2,
                },
                ShardMeta {
                    host: 1,
                    rows: 100,
                    chunks: 1,
                    bytes: 1600,
                    parts: 1,
                },
            ],
            payload_bytes: 67136,
        }
    }

    #[test]
    fn manifest_roundtrip() {
        let m = sample_manifest();
        let bytes = m.encode();
        let back = Manifest::decode(&bytes).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn manifest_roundtrips_all_schemes() {
        for scheme in [
            QuantScheme::Fp32,
            QuantScheme::Fp16,
            QuantScheme::Symmetric { bits: 2 },
            QuantScheme::Asymmetric { bits: 8 },
            QuantScheme::KMeans { bits: 3 },
        ] {
            let mut m = sample_manifest();
            m.scheme = scheme;
            assert_eq!(Manifest::decode(&m.encode()).unwrap().scheme, scheme);
        }
    }

    /// Re-encodes a manifest with the pre-v3 body layout (no per-chunk row
    /// ranges) so the dual-version decode path stays covered without
    /// golden files.
    fn encode_v2(m: &Manifest) -> Vec<u8> {
        let mut body = Vec::new();
        body.put_u64_le(m.id.0);
        body.put_u8(match m.kind {
            CheckpointKind::Full => 0,
            CheckpointKind::Incremental => 1,
        });
        body.put_u64_le(m.base.map(|b| b.0).unwrap_or(u64::MAX));
        body.put_u64_le(m.iteration);
        body.put_u64_le(m.reader_state.next_batch);
        encode_scheme(&mut body, &m.scheme);
        body.put_u16_le(m.tables.len() as u16);
        for t in &m.tables {
            body.put_u64_le(t.rows);
            body.put_u16_le(t.dim);
            body.put_u8(t.has_optimizer_state as u8);
        }
        wire::put_f32s(&mut body, &m.bottom_mlp);
        wire::put_f32s(&mut body, &m.top_mlp);
        body.put_u32_le(m.chunks.len() as u32);
        for c in &m.chunks {
            wire::put_string(&mut body, &c.key);
            body.put_u16_le(c.shard);
            body.put_u32_le(c.rows);
            body.put_u64_le(c.bytes);
            body.put_u32_le(c.parts);
        }
        body.put_u16_le(m.shards.len() as u16);
        for s in &m.shards {
            body.put_u16_le(s.host);
            body.put_u64_le(s.rows);
            body.put_u32_le(s.chunks);
            body.put_u64_le(s.bytes);
            body.put_u32_le(s.parts);
        }
        body.put_u64_le(m.payload_bytes);
        let mut out = Vec::with_capacity(body.len() + 32);
        out.put_u32_le(MAGIC);
        out.put_u16_le(VERSION_V2);
        wire::put_framed(&mut out, &body);
        out
    }

    #[test]
    fn v2_manifest_body_decodes_with_unknown_row_ranges() {
        let m = sample_manifest();
        let back = Manifest::decode(&encode_v2(&m)).unwrap();
        assert_eq!(back.id, m.id);
        assert_eq!(back.chunks.len(), m.chunks.len());
        for (old, new) in back.chunks.iter().zip(&m.chunks) {
            assert_eq!(old.key, new.key);
            assert_eq!(old.bytes, new.bytes);
            assert_eq!(old.table, ChunkMeta::UNKNOWN_TABLE);
            assert_eq!(old.row_range(), None, "pre-v3 chunks are unranked");
        }
        // v3 chunks do report their range.
        assert_eq!(m.chunks[1].row_range(), Some((1, 400, 499)));
    }

    #[test]
    fn manifest_full_has_no_base() {
        let mut m = sample_manifest();
        m.kind = CheckpointKind::Full;
        m.base = None;
        let back = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(back.base, None);
        assert_eq!(back.kind, CheckpointKind::Full);
    }

    #[test]
    fn manifest_detects_corruption() {
        let bytes = sample_manifest().encode();
        for i in (0..bytes.len()).step_by(7) {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x40;
            assert!(
                Manifest::decode(&corrupted).is_err(),
                "flip at {i} accepted"
            );
        }
    }

    #[test]
    fn manifest_rejects_wrong_magic_and_version() {
        let bytes = sample_manifest().encode();
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(Manifest::decode(&bad_magic).is_err());
        let mut bad_version = bytes;
        bad_version[4] = 99;
        assert!(Manifest::decode(&bad_version).is_err());
    }

    #[test]
    fn enveloped_manifest_roundtrips_and_detects_corruption() {
        let m = sample_manifest();
        let bytes = m.encode_enveloped();
        assert!(envelope::is_enveloped(&bytes));
        let (flags, _) = envelope::unwrap(&bytes).unwrap();
        assert_eq!(flags, envelope::FLAG_MANIFEST);
        assert_eq!(Manifest::decode(&bytes).unwrap(), m);
        // Any flip past the magic is caught by the envelope itself.
        for i in (4..bytes.len()).step_by(7) {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x40;
            assert!(
                matches!(Manifest::decode(&corrupted), Err(CnrError::Corrupt(_))),
                "flip at {i} accepted"
            );
        }
        // Truncations are always an error, never a short decode.
        for keep in [0, 3, 8, 15, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(Manifest::decode(&bytes[..keep]).is_err());
        }
    }

    #[test]
    fn enveloped_chunk_roundtrips_and_detects_corruption() {
        let c = sample_chunk(true);
        let bytes = c.encode_enveloped();
        assert!(envelope::is_enveloped(&bytes));
        assert_eq!(ChunkPayload::decode(&bytes).unwrap(), c);
        for i in (4..bytes.len()).step_by(5) {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x10;
            assert!(
                matches!(ChunkPayload::decode(&corrupted), Err(CnrError::Corrupt(_))),
                "flip at {i} accepted"
            );
        }
    }

    #[test]
    fn keys_are_hierarchical() {
        let id = CheckpointId(7);
        assert_eq!(Manifest::key("jobA", id), "jobA/ckpt-00000007/manifest");
        assert_eq!(
            Manifest::chunk_key("jobA", id, 2, 3),
            "jobA/ckpt-00000007/shard-00002-chunk-000003"
        );
        // Lexicographic key order == (shard, seq) order across the whole
        // u16 shard space (the regression was 3-digit padding: "1000" <
        // "999").
        assert!(
            Manifest::chunk_key("j", id, 999, 0) < Manifest::chunk_key("j", id, 1000, 0)
        );
    }

    fn sample_chunk(with_acc: bool) -> ChunkPayload {
        let scheme = QuantScheme::Asymmetric { bits: 4 };
        let rows: Vec<QuantizedRow> = (0..3)
            .map(|i| {
                let row: Vec<f32> = (0..8).map(|j| (i * 8 + j) as f32 * 0.01).collect();
                scheme.quantize_row(&row)
            })
            .collect();
        ChunkPayload {
            table: 1,
            row_indices: vec![10, 20, 30],
            optimizer_state: with_acc.then(|| vec![0.1, 0.2, 0.3]),
            rows,
        }
    }

    #[test]
    fn chunk_roundtrip() {
        for with_acc in [false, true] {
            let c = sample_chunk(with_acc);
            let back = ChunkPayload::decode(&c.encode()).unwrap();
            assert_eq!(c, back);
        }
    }

    #[test]
    fn chunk_detects_corruption() {
        let bytes = sample_chunk(true).encode();
        for i in (0..bytes.len()).step_by(5) {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x10;
            assert!(
                ChunkPayload::decode(&corrupted).is_err(),
                "flip at {i} accepted"
            );
        }
    }

    #[test]
    fn empty_chunk_roundtrips() {
        let c = ChunkPayload {
            table: 0,
            row_indices: vec![],
            optimizer_state: None,
            rows: vec![],
        };
        assert_eq!(ChunkPayload::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn total_bytes_includes_manifest() {
        let m = sample_manifest();
        assert!(m.total_bytes() > m.payload_bytes);
    }
}
