//! Atomic in-memory snapshots (§4.2, *decoupled checkpointing*).
//!
//! Training stalls only while the model state is copied from (simulated)
//! device memory to host memory; everything downstream — quantization,
//! serialization, upload — happens in background processes against the
//! immutable copy. All devices copy their shards concurrently, so the stall
//! is bounded by the largest shard, not the model size: the reason the
//! paper's stall stays <7 s on 128 GPUs regardless of scale.

use crate::config::CheckpointConfig;
use crate::manifest::CheckpointKind;
use crate::policy::{Decision, TrackerAction};
use cnr_model::{ModelState, ShardPlan};
use cnr_reader::ReaderState;
use cnr_tracking::TrackerSnapshot;
use cnr_trainer::Trainer;
use std::time::Duration;

/// Everything a checkpoint needs, captured at one consistent instant.
#[derive(Debug, Clone)]
pub struct TrainingSnapshot {
    /// Complete model state (weights + optimizer + iteration).
    pub model: ModelState,
    /// Rows to include: all rows for full checkpoints, the tracked delta for
    /// incrementals.
    pub delta: TrackerSnapshot,
    /// Reader position, gap-free by the §4.1 budget protocol.
    pub reader: ReaderState,
    /// Kind this snapshot was taken for.
    pub kind: CheckpointKind,
    /// Simulated time when the snapshot completed.
    pub taken_at: Duration,
    /// How long training was stalled for the copy.
    pub stall: Duration,
}

/// Takes snapshots according to a shard plan and config.
#[derive(Debug, Clone)]
pub struct SnapshotTaker {
    shard_plan: ShardPlan,
}

impl SnapshotTaker {
    /// Creates a taker with the given device layout.
    pub fn new(shard_plan: ShardPlan) -> Self {
        Self { shard_plan }
    }

    /// The shard plan in use.
    pub fn shard_plan(&self) -> &ShardPlan {
        &self.shard_plan
    }

    /// Stalls the trainer, copies state, applies the policy's tracker
    /// action, and resumes. `reader_state` must already be collected (the
    /// budget must be drained) — passing it in keeps the protocol order
    /// explicit in the engine.
    pub fn take(
        &self,
        trainer: &mut Trainer,
        reader_state: ReaderState,
        decision: Decision,
        config: &CheckpointConfig,
    ) -> TrainingSnapshot {
        // Stall = largest shard / host-copy bandwidth (§4.2).
        let max_shard = self.shard_plan.max_device_bytes(trainer.model().config());
        let stall = config.snapshot_stall(max_shard);
        trainer.stall(stall);

        let model = ModelState::extract(trainer.model());
        let row_counts = trainer.model().config().row_counts();
        let delta = match (decision.kind, decision.tracker) {
            (CheckpointKind::Full, TrackerAction::SnapshotReset) => {
                trainer.tracker().reset();
                TrackerSnapshot::full(&row_counts)
            }
            (CheckpointKind::Full, TrackerAction::SnapshotKeep) => {
                TrackerSnapshot::full(&row_counts)
            }
            (CheckpointKind::Incremental, TrackerAction::SnapshotKeep) => {
                trainer.tracker().snapshot()
            }
            (CheckpointKind::Incremental, TrackerAction::SnapshotReset) => {
                trainer.tracker().snapshot_and_reset()
            }
        };

        TrainingSnapshot {
            model,
            delta,
            reader: reader_state,
            kind: decision.kind,
            taken_at: trainer.clock().now(),
            stall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnr_cluster::SimClock;
    use cnr_model::{DlrmModel, ModelConfig};
    use cnr_trainer::TrainerConfig;
    use cnr_workload::{DatasetSpec, SyntheticDataset};

    fn setup() -> (SyntheticDataset, Trainer, SnapshotTaker, CheckpointConfig) {
        let spec = DatasetSpec::tiny(55);
        let ds = SyntheticDataset::new(spec.clone());
        let cfg = ModelConfig::for_dataset(&spec, 8);
        let plan = ShardPlan::balanced(&cfg, 1, 2);
        let model = DlrmModel::new(cfg);
        let trainer = Trainer::new(model, SimClock::new(), TrainerConfig::default());
        (ds, trainer, SnapshotTaker::new(plan), CheckpointConfig::default())
    }

    fn full_decision() -> Decision {
        Decision {
            kind: CheckpointKind::Full,
            tracker: TrackerAction::SnapshotReset,
        }
    }

    fn incr_keep() -> Decision {
        Decision {
            kind: CheckpointKind::Incremental,
            tracker: TrackerAction::SnapshotKeep,
        }
    }

    fn incr_reset() -> Decision {
        Decision {
            kind: CheckpointKind::Incremental,
            tracker: TrackerAction::SnapshotReset,
        }
    }

    #[test]
    fn full_snapshot_includes_all_rows_and_resets_tracker() {
        let (ds, mut trainer, taker, cfg) = setup();
        for i in 0..5 {
            trainer.train_one(&ds.batch(i));
        }
        assert!(trainer.tracker().modified_rows() > 0);
        let snap = taker.take(&mut trainer, ReaderState::at(5), full_decision(), &cfg);
        assert_eq!(snap.kind, CheckpointKind::Full);
        assert!((snap.delta.fraction_modified() - 1.0).abs() < 1e-12);
        assert_eq!(trainer.tracker().modified_rows(), 0, "baseline resets tracking");
        assert_eq!(snap.reader.next_batch, 5);
        assert_eq!(snap.model.iteration, 5);
    }

    #[test]
    fn incremental_keep_accumulates() {
        let (ds, mut trainer, taker, cfg) = setup();
        trainer.train_one(&ds.batch(0));
        let snap1 = taker.take(&mut trainer, ReaderState::at(1), incr_keep(), &cfg);
        trainer.train_one(&ds.batch(1));
        let snap2 = taker.take(&mut trainer, ReaderState::at(2), incr_keep(), &cfg);
        // One-shot semantics: later delta is a superset.
        assert!(snap2.delta.modified_rows() >= snap1.delta.modified_rows());
    }

    #[test]
    fn incremental_reset_isolates_intervals() {
        let (ds, mut trainer, taker, cfg) = setup();
        trainer.train_one(&ds.batch(0));
        let snap1 = taker.take(&mut trainer, ReaderState::at(1), incr_reset(), &cfg);
        assert!(snap1.delta.modified_rows() > 0);
        assert_eq!(trainer.tracker().modified_rows(), 0);
        trainer.train_one(&ds.batch(1));
        let snap2 = taker.take(&mut trainer, ReaderState::at(2), incr_reset(), &cfg);
        // Consecutive semantics: the second delta covers only interval 2.
        let b1 = ds.batch(1);
        let mut distinct = std::collections::HashSet::new();
        for (t, idx) in b1.sparse.iter().enumerate() {
            for &r in idx {
                distinct.insert((t, r));
            }
        }
        assert_eq!(snap2.delta.modified_rows(), distinct.len());
    }

    #[test]
    fn stall_is_accounted_on_the_trainer() {
        let (ds, mut trainer, taker, cfg) = setup();
        trainer.train_one(&ds.batch(0));
        let before = trainer.stall_time();
        let snap = taker.take(&mut trainer, ReaderState::at(1), full_decision(), &cfg);
        assert!(snap.stall > Duration::ZERO);
        assert_eq!(trainer.stall_time() - before, snap.stall);
        assert_eq!(snap.taken_at, trainer.clock().now());
    }

    #[test]
    fn snapshot_is_immutable_copy() {
        let (ds, mut trainer, taker, cfg) = setup();
        trainer.train_one(&ds.batch(0));
        let snap = taker.take(&mut trainer, ReaderState::at(1), full_decision(), &cfg);
        let hash_before = trainer.model().state_hash();
        // Continue training; snapshot must not change.
        let frozen = snap.model.clone();
        for i in 1..5 {
            trainer.train_one(&ds.batch(i));
        }
        assert_ne!(trainer.model().state_hash(), hash_before);
        assert_eq!(snap.model, frozen);
    }
}
