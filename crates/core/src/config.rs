//! Checkpoint engine configuration.

use cnr_quant::QuantScheme;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Incremental checkpointing policy (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Every checkpoint is a full model copy (the paper's baseline).
    FullOnly,
    /// One full baseline, then incrementals that accumulate all
    /// modifications since that baseline ("one-shot baseline").
    OneShot,
    /// Each incremental stores only the rows modified during the last
    /// interval; restore reads the whole chain ("consecutive increment").
    Consecutive,
    /// One-shot behaviour plus the history-based predictor that re-takes a
    /// full baseline when `Fc ≤ Ic` ("intermittent baseline", the default).
    Intermittent,
}

/// Quantization mode for checkpoint payloads (§5.2, §6.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QuantMode {
    /// No quantization: FP32 passthrough (bit-exact restores).
    None,
    /// A fixed scheme for every checkpoint.
    Fixed(QuantScheme),
    /// The paper's dynamic selection: pick the bit-width from the expected
    /// number of restores (2/3/4/8 bits), falling back to 8-bit when actual
    /// restores exceed the estimate.
    Dynamic {
        /// Expected number of restore events over the job's lifetime.
        expected_restores: u32,
    },
}

/// Per-iteration delta WAL between full checkpoints (off by default).
///
/// When enabled, every training iteration appends the touched-row delta to
/// a segmented, CRC-framed log (`cnr_storage::wal`); restore replays the
/// log tail on top of the last full checkpoint, collapsing lost work from
/// a checkpoint interval to at most one iteration (Checkmate-style).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeltaWalConfig {
    /// Rotate to a new log segment once the current one reaches this size.
    pub segment_bytes: u64,
    /// Sync (make durable) every N appends; `1` loses at most the
    /// iteration that was mid-append when the process died, larger values
    /// trade durability for fewer sync round-trips.
    pub sync_every: u32,
    /// Fixed simulated latency charged per sync — the log device's fsync
    /// round-trip. Charged to the training clock, so it shows up in the
    /// steady-state overhead the paper's 6–17% band is about.
    pub sync_latency: Duration,
    /// Simulated log-device append bandwidth (bytes/s) for the newly
    /// synced frame bytes. The object-store re-put of the whole segment is
    /// an implementation artifact of the simulated store; a real WAL
    /// device appends, so time is charged for appended bytes only.
    pub append_bandwidth: f64,
}

impl Default for DeltaWalConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 1 << 20,
            sync_every: 1,
            sync_latency: Duration::from_micros(10),
            append_bandwidth: 1.0e9,
        }
    }
}

impl DeltaWalConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.segment_bytes == 0 {
            return Err("wal segment_bytes must be positive".into());
        }
        if self.sync_every == 0 {
            return Err("wal sync_every must be positive".into());
        }
        if self.append_bandwidth <= 0.0 {
            return Err("wal append bandwidth must be positive".into());
        }
        Ok(())
    }

    /// The storage-layer writer configuration this implies.
    pub fn writer_config(&self) -> cnr_storage::WalConfig {
        cnr_storage::WalConfig {
            segment_bytes: self.segment_bytes,
            sync_every: self.sync_every,
        }
    }

    /// Simulated time one sync costs for `appended_bytes` of new frames.
    pub fn sync_cost(&self, appended_bytes: u64) -> Duration {
        self.sync_latency
            + Duration::from_secs_f64(appended_bytes as f64 / self.append_bandwidth)
    }
}

/// Full configuration of the Check-N-Run engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// Batches per checkpoint interval (the paper defaults to the batch
    /// count equivalent of 30 minutes).
    pub interval_batches: u64,
    /// Incremental policy.
    pub policy: PolicyKind,
    /// Quantization mode.
    pub quant: QuantMode,
    /// Embedding rows per storage chunk (pipelining granularity, §4.4).
    pub chunk_rows: usize,
    /// Background quantization worker threads (the paper's "dedicated CPU
    /// processes"). The budget spreads across writer hosts: up to
    /// `min(quantize_workers, writer_hosts)` shards run concurrently, each
    /// splitting its share into a chunk-level pipeline — a single-host
    /// write still quantizes on all workers.
    pub quantize_workers: usize,
    /// Simulated writer hosts: each owns a contiguous row-range of every
    /// table and uploads its own shard over its own uplink (§4.4's
    /// parallel per-host writes). 1 = the single-host path.
    pub writer_hosts: usize,
    /// Bounded in-flight window of the upload scheduler: at most this many
    /// multipart parts per host may be in flight (in simulated time) before
    /// backpressure delays the next part.
    pub upload_window: usize,
    /// Multipart part size: chunks larger than this stream to the store in
    /// multiple parts, each accounted individually.
    pub part_bytes: usize,
    /// Simulated reader hosts used by sharded restores: on recovery each
    /// host fetches and decodes a share of the checkpoint chain over its
    /// own downlink, so time-to-resume shrinks with this count (the read
    /// mirror of `writer_hosts`). 1 = the single-host restore path.
    pub reader_hosts: usize,
    /// Bounded in-flight window of the restore fetch scheduler: at most
    /// this many ranged reads per reader host may be in flight (in
    /// simulated time) before backpressure delays the next one.
    pub fetch_window: usize,
    /// Transient read-failure retries per ranged fetch before a restore
    /// fails.
    pub fetch_retries: u32,
    /// How many complete restore chains to retain; older chains are deleted
    /// once a newer checkpoint is valid (§4.4).
    pub retained_chains: usize,
    /// Simulated host-copy bandwidth per device for the snapshot stall
    /// (GPU HBM → pinned host memory, §4.2).
    pub snapshot_bandwidth_per_device: f64,
    /// Devices in the (simulated) training cluster.
    pub devices: u32,
    /// Per-iteration delta WAL between full checkpoints; `None` (the
    /// default) disables it and a failure loses the interval since the
    /// last checkpoint, as in the paper.
    pub delta_wal: Option<DeltaWalConfig>,
    /// Lazy (CPR-style) restores: resume training as soon as the dense
    /// layers and the top-`lazy_hot_fraction` hot rows are applied, drain
    /// the cold tail in the background, and fault cold rows in on demand.
    /// Off by default — eager restores apply every chunk before resuming.
    pub lazy_restore: bool,
    /// Fraction of embedding rows (by access heat) that must be applied
    /// before the first batch when `lazy_restore` is set; `1.0` degenerates
    /// to eager timing.
    pub lazy_hot_fraction: f64,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        Self {
            interval_batches: 1000,
            policy: PolicyKind::Intermittent,
            quant: QuantMode::None,
            chunk_rows: 4096,
            quantize_workers: 2,
            writer_hosts: 1,
            upload_window: 8,
            part_bytes: 1 << 20,
            reader_hosts: 1,
            fetch_window: 8,
            fetch_retries: 2,
            retained_chains: 1,
            snapshot_bandwidth_per_device: 5.0e9,
            devices: 8,
            delta_wal: None,
            lazy_restore: false,
            lazy_hot_fraction: 0.1,
        }
    }
}

impl CheckpointConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.interval_batches == 0 {
            return Err("interval_batches must be positive".into());
        }
        if self.chunk_rows == 0 {
            return Err("chunk_rows must be positive".into());
        }
        if self.quantize_workers == 0 {
            return Err("need at least one quantize worker".into());
        }
        if self.writer_hosts == 0 {
            return Err("need at least one writer host".into());
        }
        if self.writer_hosts > u16::MAX as usize {
            return Err("writer_hosts exceeds the shard id space".into());
        }
        if self.upload_window == 0 {
            return Err("upload window must admit at least one part".into());
        }
        if self.part_bytes == 0 {
            return Err("multipart part size must be positive".into());
        }
        if self.reader_hosts == 0 {
            return Err("need at least one reader host".into());
        }
        if self.reader_hosts > u16::MAX as usize {
            return Err("reader_hosts exceeds the shard id space".into());
        }
        if self.fetch_window == 0 {
            return Err("fetch window must admit at least one range".into());
        }
        if self.retained_chains == 0 {
            return Err("must retain at least one chain".into());
        }
        if self.snapshot_bandwidth_per_device <= 0.0 {
            return Err("snapshot bandwidth must be positive".into());
        }
        if self.devices == 0 {
            return Err("need at least one device".into());
        }
        if let Some(wal) = &self.delta_wal {
            wal.validate()?;
        }
        if !self.lazy_hot_fraction.is_finite() || !(0.0..=1.0).contains(&self.lazy_hot_fraction) {
            return Err("lazy_hot_fraction must lie in [0, 1]".into());
        }
        if let QuantMode::Fixed(s) = self.quant {
            let bits = s.bits();
            if bits != 32 && bits != 16 && !(1..=8).contains(&bits) {
                return Err(format!("unsupported checkpoint bit width {bits}"));
            }
        }
        Ok(())
    }

    /// The sharded-restore options implied by this configuration: the
    /// quantize-worker budget doubles as the decode budget (the recovery
    /// path runs on the same background CPU processes the writer used).
    pub fn restore_options(&self) -> crate::read::RestoreOptions {
        crate::read::RestoreOptions {
            reader_hosts: self.reader_hosts.max(1),
            fetch_window: self.fetch_window,
            decode_workers: self.quantize_workers,
            fetch_retries: self.fetch_retries,
            lazy: self.lazy_restore,
            hot_fraction: self.lazy_hot_fraction,
        }
    }

    /// Snapshot stall duration for a model whose largest per-device shard is
    /// `max_device_bytes` (§4.2: devices copy concurrently, so the max
    /// shard bounds the stall).
    pub fn snapshot_stall(&self, max_device_bytes: u64) -> Duration {
        Duration::from_secs_f64(max_device_bytes as f64 / self.snapshot_bandwidth_per_device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(CheckpointConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_catches_zeroes() {
        let c = CheckpointConfig {
            interval_batches: 0,
            ..CheckpointConfig::default()
        };
        assert!(c.validate().is_err());

        let c = CheckpointConfig {
            chunk_rows: 0,
            ..CheckpointConfig::default()
        };
        assert!(c.validate().is_err());

        let c = CheckpointConfig {
            quantize_workers: 0,
            ..CheckpointConfig::default()
        };
        assert!(c.validate().is_err());

        let c = CheckpointConfig {
            retained_chains: 0,
            ..CheckpointConfig::default()
        };
        assert!(c.validate().is_err());

        for bad in [
            CheckpointConfig {
                writer_hosts: 0,
                ..CheckpointConfig::default()
            },
            CheckpointConfig {
                writer_hosts: u16::MAX as usize + 1,
                ..CheckpointConfig::default()
            },
            CheckpointConfig {
                upload_window: 0,
                ..CheckpointConfig::default()
            },
            CheckpointConfig {
                part_bytes: 0,
                ..CheckpointConfig::default()
            },
            CheckpointConfig {
                reader_hosts: 0,
                ..CheckpointConfig::default()
            },
            CheckpointConfig {
                reader_hosts: u16::MAX as usize + 1,
                ..CheckpointConfig::default()
            },
            CheckpointConfig {
                fetch_window: 0,
                ..CheckpointConfig::default()
            },
            CheckpointConfig {
                lazy_hot_fraction: -0.5,
                ..CheckpointConfig::default()
            },
            CheckpointConfig {
                lazy_hot_fraction: 2.0,
                ..CheckpointConfig::default()
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn paper_scale_snapshot_stall_is_about_seven_seconds() {
        // §4.2: a model partitioned over 128 GPUs stalls <7s. With ~32 GB
        // HBM per device and 5 GB/s host copy, the bound is 6.4s.
        let cfg = CheckpointConfig {
            devices: 128,
            snapshot_bandwidth_per_device: 5.0e9,
            ..Default::default()
        };
        let stall = cfg.snapshot_stall(32 * 1024 * 1024 * 1024);
        assert!(stall < Duration::from_secs(7));
        assert!(stall > Duration::from_secs(6));
    }

    #[test]
    fn fixed_quant_bits_validated() {
        let c = CheckpointConfig {
            quant: QuantMode::Fixed(QuantScheme::Asymmetric { bits: 8 }),
            ..CheckpointConfig::default()
        };
        assert!(c.validate().is_ok());
    }
}
