//! Bench-trajectory records: the hot-path benchmark results that are
//! checked in at the repo root as `BENCH_restore.json`,
//! `BENCH_quant.json`, and `BENCH_wal.json`.
//!
//! The `cnr_bench` binary (`cargo run --release -p cnr_bench --bin
//! cnr_bench`) re-measures and rewrites both files; the criterion benches
//! under `benches/{restore_scaling,quant_latency}.rs` call the same
//! measurement functions, so the checked-in numbers and the bench output
//! always come from one code path. CI's `bench-trajectory` job regenerates
//! the files in quick mode and fails when the hot paths changed but
//! neither JSON did — the trajectory must move with the code it measures.
//!
//! Two kinds of quantity appear in the records and they age differently:
//!
//! * `simulated_us` values come off the [`SimClock`] and are exactly
//!   reproducible anywhere;
//! * `ns`/`ns_per_row` values are wall-clock on the emitting machine and
//!   are comparable only against the same file's history — which is why
//!   every emitted document carries a [`MachineInfo`] block (core count,
//!   OS, arch): a cross-machine diff of wall-clock records is noise, and
//!   the block makes that visible in review (e.g. a 1-core emitter can
//!   never show a threaded-decode win).
//!
//! The JSON is hand-rolled (the workspace vendors no serde_json): flat
//! records, stable ids, three decimals, so diffs stay reviewable. The
//! string escaping is [`cnr_obs::json::escape`] — the same routine the
//! trace exporter uses, so the two hand-rolled writers cannot drift.

use cnr_cluster::SimClock;
use cnr_core::config::{CheckpointConfig, DeltaWalConfig};
use cnr_core::engine::EngineBuilder;
use cnr_core::manifest::{CheckpointId, CheckpointKind};
use cnr_core::policy::{Decision, TrackerAction};
use cnr_core::read::{restore_sharded, restore_sharded_with_heat, RestoreOptions, RowHeat};
use cnr_core::snapshot::SnapshotTaker;
use cnr_core::write::CheckpointWriter;
use cnr_core::TrainingSnapshot;
use cnr_model::{DlrmModel, ModelConfig, ShardPlan};
use cnr_obs::json::escape;
use cnr_quant::QuantScheme;
use cnr_reader::ReaderState;
use cnr_storage::{InMemoryStore, RemoteConfig, SimulatedRemoteStore};
use cnr_trainer::{Trainer, TrainerConfig};
use cnr_workload::{DatasetSpec, SyntheticDataset, TableAccessSpec};
use std::time::{Duration, Instant};

use crate::workloads::{sampled_rows, trained_model};

/// One measured quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Stable identifier (`stage/param=value` style).
    pub id: String,
    /// Measured value in `unit`.
    pub value: f64,
    /// Unit: `simulated_us` (deterministic) or `ns`/`ns_per_row`
    /// (wall-clock on the emitting machine).
    pub unit: &'static str,
    /// Measurement context the value is only interpretable under (e.g. the
    /// `hot_fraction` a `first_batch` latency was measured at) — the
    /// per-record analogue of the document's `machine` block.
    pub ctx: Option<String>,
}

impl BenchRecord {
    fn new(id: impl Into<String>, value: f64, unit: &'static str) -> Self {
        Self {
            id: id.into(),
            value,
            unit,
            ctx: None,
        }
    }

    fn with_ctx(mut self, ctx: impl Into<String>) -> Self {
        self.ctx = Some(ctx.into());
        self
    }
}

/// The machine a record set's wall-clock values were measured on.
/// `simulated_us` records are machine-independent; `ns` / `ns_per_row`
/// records are only interpretable next to this block (a 1-core emitter
/// can never show a threaded-decode win, and core-count changes explain
/// ordering flips in the checked-in history).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineInfo {
    /// `std::thread::available_parallelism` on the emitting machine.
    pub cores: usize,
    /// `std::env::consts::OS`.
    pub os: &'static str,
    /// `std::env::consts::ARCH`.
    pub arch: &'static str,
}

impl MachineInfo {
    /// Describes the machine the current process runs on.
    pub fn current() -> Self {
        Self {
            cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            os: std::env::consts::OS,
            arch: std::env::consts::ARCH,
        }
    }
}

/// Serializes a record set as the checked-in JSON document. `machine`
/// describes where the wall-clock records were measured.
pub fn to_json(suite: &str, mode: &str, machine: &MachineInfo, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"suite\": \"{}\",\n", escape(suite)));
    out.push_str(&format!("  \"mode\": \"{}\",\n", escape(mode)));
    out.push_str(&format!(
        "  \"machine\": {{ \"cores\": {}, \"os\": \"{}\", \"arch\": \"{}\" }},\n",
        machine.cores,
        escape(machine.os),
        escape(machine.arch)
    ));
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let ctx = match &r.ctx {
            Some(c) => format!(", \"ctx\": \"{}\"", escape(c)),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{ \"id\": \"{}\", \"value\": {:.3}, \"unit\": \"{}\"{} }}{}\n",
            escape(&r.id),
            r.value,
            escape(r.unit),
            ctx,
            comma
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn take_full_snapshot(
    spec: &DatasetSpec,
    dim: usize,
    batches: u64,
) -> (ModelConfig, TrainingSnapshot) {
    let ds = SyntheticDataset::new(spec.clone());
    let cfg = ModelConfig::for_dataset(spec, dim);
    let model = DlrmModel::new(cfg.clone());
    let mut trainer = Trainer::new(model, SimClock::new(), TrainerConfig::default());
    for i in 0..batches {
        trainer.train_one(&ds.batch(i));
    }
    let snap = SnapshotTaker::new(ShardPlan::balanced(&cfg, 1, 2)).take(
        &mut trainer,
        ReaderState::at(batches),
        Decision {
            kind: CheckpointKind::Full,
            tracker: TrackerAction::SnapshotReset,
        },
        &CheckpointConfig::default(),
    );
    (cfg, snap)
}

/// The restore-scaling checkpoint: small enough to restore in simulated
/// milliseconds, but with enough embedding chunks (141 at 64 rows each)
/// that per-chunk fetch time dominates the fixed manifest walk — on this
/// workload both host scaling and the lazy first-batch win are visible.
/// (The old `tiny` workload's 24 chunks made the manifest the bottleneck,
/// hiding both.)
pub fn restore_snapshot() -> (ModelConfig, TrainingSnapshot) {
    let spec = DatasetSpec {
        seed: 2424,
        batch_size: 16,
        dense_dim: 4,
        tables: vec![
            TableAccessSpec::new(6_000, 2, 1.05),
            TableAccessSpec::new(3_000, 1, 0.9),
        ],
        concept_seed: None,
    };
    take_full_snapshot(&spec, 16, 3)
}

/// A checkpoint whose 4-bit decode dominates the restore: the workload of
/// the serial-vs-threaded decode comparison.
pub fn decode_snapshot(quick: bool) -> (ModelConfig, TrainingSnapshot) {
    let (rows_a, rows_b, dim, batches) = if quick {
        (3_000, 1_500, 16, 1)
    } else {
        (12_000, 6_000, 32, 2)
    };
    let spec = DatasetSpec {
        seed: 4242,
        batch_size: 16,
        dense_dim: 4,
        tables: vec![
            TableAccessSpec::new(rows_a, 2, 1.0),
            TableAccessSpec::new(rows_b, 1, 0.9),
        ],
        concept_seed: None,
    };
    take_full_snapshot(&spec, dim, batches)
}

/// Writes the restore-scaling checkpoint over `hosts` simulated downlinks
/// and restores it, returning the simulated failure→ready-to-train time.
/// Deterministic: the value comes off the [`SimClock`].
pub fn simulated_ready_to_train(
    model_cfg: &ModelConfig,
    snap: &TrainingSnapshot,
    hosts: usize,
) -> Duration {
    let store = SimulatedRemoteStore::new(
        RemoteConfig {
            bandwidth_bytes_per_sec: 4.0 * 1024.0 * 1024.0,
            base_latency: Duration::from_micros(200),
            replication: 1,
            channels: hosts as u32,
        },
        SimClock::new(),
    );
    let writer = CheckpointWriter::new(&store, "bench");
    let cfg = CheckpointConfig {
        // 24 chunks over the two tiny tables: divisible by 8 reader hosts,
        // so the scaling approaches the ideal 8x.
        chunk_rows: 64,
        ..CheckpointConfig::default()
    };
    writer
        .write(snap, CheckpointId(0), None, QuantScheme::Fp32, &cfg)
        .expect("write");
    let failed_at = store.wait_for_drain();
    let sharded = restore_sharded(
        &store,
        "bench",
        CheckpointId(0),
        model_cfg,
        &RestoreOptions {
            reader_hosts: hosts,
            ..RestoreOptions::default()
        },
        failed_at,
    )
    .expect("restore");
    sharded.breakdown.fetch
}

/// The hot fraction the checked-in `first_batch` series is measured at:
/// restore the top 5% of rows by Zipf heat (plus the dense MLPs) before
/// the first batch, drain the rest in the background.
pub const FIRST_BATCH_HOT_FRACTION: f64 = 0.05;

/// Writes the restore-scaling checkpoint over `hosts` downlinks and
/// restores it *lazily* at `hot_fraction`, returning simulated
/// `(first_batch, ready_to_train)` — when training may resume on the hot
/// set versus when the cold tail finished draining. Heat is the pure
/// workload Zipf prior (no coverage boost: the bench restores into a
/// fresh job, where no tracker history exists). Deterministic: both
/// values come off the [`SimClock`].
pub fn simulated_first_batch(
    model_cfg: &ModelConfig,
    snap: &TrainingSnapshot,
    hosts: usize,
    hot_fraction: f64,
) -> (Duration, Duration) {
    let store = SimulatedRemoteStore::new(
        RemoteConfig {
            bandwidth_bytes_per_sec: 4.0 * 1024.0 * 1024.0,
            base_latency: Duration::from_micros(200),
            replication: 1,
            channels: hosts as u32,
        },
        SimClock::new(),
    );
    let writer = CheckpointWriter::new(&store, "bench");
    let cfg = CheckpointConfig {
        chunk_rows: 64,
        ..CheckpointConfig::default()
    };
    writer
        .write(snap, CheckpointId(0), None, QuantScheme::Fp32, &cfg)
        .expect("write");
    let failed_at = store.wait_for_drain();
    let heat = RowHeat::zipf(&model_cfg.row_counts(), 1.0);
    let sharded = restore_sharded_with_heat(
        &store,
        "bench",
        CheckpointId(0),
        model_cfg,
        &RestoreOptions {
            reader_hosts: hosts,
            lazy: true,
            hot_fraction,
            ..RestoreOptions::default()
        },
        failed_at,
        None,
        Some(&heat),
    )
    .expect("restore");
    (
        sharded.first_batch_at - failed_at,
        sharded.ready_at - failed_at,
    )
}

/// Writes the decode-comparison checkpoint (4-bit, small single-part
/// chunks) into an in-memory store, once, for repeated timed restores.
pub fn decode_store(snap: &TrainingSnapshot) -> InMemoryStore {
    let store = InMemoryStore::new();
    let writer = CheckpointWriter::new(&store, "bench");
    let cfg = CheckpointConfig {
        chunk_rows: 512, // dozens of chunks: decode threads stay balanced
        ..CheckpointConfig::default()
    };
    writer
        .write(
            snap,
            CheckpointId(0),
            None,
            QuantScheme::Asymmetric { bits: 4 },
            &cfg,
        )
        .expect("write");
    store
}

/// Wall-clock of one full sharded restore from `store` on `workers`
/// decode threads (single reader host, so the worker budget all lands on
/// decode), minimized over `rounds` runs.
pub fn decode_wall_clock(
    store: &InMemoryStore,
    model_cfg: &ModelConfig,
    workers: usize,
    rounds: usize,
) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..rounds.max(1) {
        let t0 = Instant::now();
        let sharded = restore_sharded(
            store,
            "bench",
            CheckpointId(0),
            model_cfg,
            &RestoreOptions {
                reader_hosts: 1,
                decode_workers: workers,
                ..RestoreOptions::default()
            },
            Duration::ZERO,
        )
        .expect("restore");
        let wall = t0.elapsed();
        std::hint::black_box(&sharded.report.state);
        best = best.min(wall);
    }
    best
}

/// The `BENCH_restore.json` record set: simulated ready-to-train per
/// reader-host count, plus serial-vs-threaded decode wall-clock.
pub fn restore_records(quick: bool) -> Vec<BenchRecord> {
    let mut records = Vec::new();
    let (model_cfg, snap) = restore_snapshot();
    for hosts in [1usize, 2, 4, 8] {
        let t = simulated_ready_to_train(&model_cfg, &snap, hosts);
        records.push(BenchRecord::new(
            format!("ready_to_train/hosts={hosts}"),
            t.as_secs_f64() * 1e6,
            "simulated_us",
        ));
    }
    // Lazy first-batch latency: the same checkpoint, restored priority-
    // ordered with the top rows by Zipf heat applied before training
    // resumes. Each record carries the hot fraction it was measured at —
    // the number is meaningless without it.
    for hosts in [1usize, 2, 4, 8] {
        let (first_batch, _) =
            simulated_first_batch(&model_cfg, &snap, hosts, FIRST_BATCH_HOT_FRACTION);
        records.push(
            BenchRecord::new(
                format!("first_batch/hosts={hosts}"),
                first_batch.as_secs_f64() * 1e6,
                "simulated_us",
            )
            .with_ctx(format!("hot_fraction={FIRST_BATCH_HOT_FRACTION}")),
        );
    }
    let (decode_cfg, decode_snap) = decode_snapshot(quick);
    let store = decode_store(&decode_snap);
    let rounds = if quick { 2 } else { 5 };
    for workers in [1usize, 4] {
        let t = decode_wall_clock(&store, &decode_cfg, workers, rounds);
        records.push(BenchRecord::new(
            format!("decode_wall/workers={workers}"),
            t.as_nanos() as f64,
            "ns",
        ));
    }
    records
}

/// The `BENCH_quant.json` record set: wall-clock ns per quantized row for
/// each scheme the quant-latency bench tracks.
pub fn quant_records(quick: bool) -> Vec<BenchRecord> {
    use cnr_quant::RowSource;
    let (_, model) = trained_model(1, if quick { 20 } else { 100 }, 16);
    let rows = sampled_rows(&model, 64);
    let rounds = if quick { 3 } else { 10 };
    let mut records = Vec::new();
    for (name, scheme) in quant_schemes() {
        let mut best = Duration::MAX;
        for _ in 0..rounds {
            let t0 = Instant::now();
            for i in 0..rows.num_rows() {
                std::hint::black_box(scheme.quantize_row(rows.row(i)));
            }
            best = best.min(t0.elapsed());
        }
        records.push(BenchRecord::new(
            format!("quantize_row/{name}"),
            best.as_nanos() as f64 / rows.num_rows() as f64,
            "ns_per_row",
        ));
    }
    records
}

/// The `BENCH_wal.json` record set: steady-state overhead of the
/// per-iteration delta WAL against an otherwise identical engine, plus the
/// cost of replaying the logged tail after a crash. All values come off
/// the [`SimClock`], so they are exactly reproducible on every machine;
/// quick mode only shortens the measured window (the per-iteration
/// averages shift by well under a percent).
///
/// The headline record, `steady_overhead/frac`, is asserted to sit inside
/// the paper's 6–17% checkpoint-overhead band (Check-N-Run §5): logging a
/// quantized delta every iteration must stay in the same cost regime the
/// paper reports for per-iteration checkpointing.
pub fn wal_records(quick: bool) -> Vec<BenchRecord> {
    let warmup = 5u64; // first full checkpoint lands here; the WAL arms after it
    let steady = if quick { 10u64 } else { 30 };
    let spec = DatasetSpec::tiny(808);
    let build = |wal: Option<DeltaWalConfig>| {
        let mut b = EngineBuilder::new(spec.clone(), ModelConfig::for_dataset(&spec, 8))
            .checkpoint_every_batches(warmup)
            .cluster_shape(1, 2);
        if let Some(w) = wal {
            b = b.delta_wal(w);
        }
        b.build().expect("engine")
    };

    // Baseline: same model, same batches, same checkpoint cadence, no WAL.
    let mut base = build(None);
    base.train_batches(warmup).expect("warmup");
    let base_t0 = base.clock().now();
    base.train_batches(steady).expect("steady");
    let base_window = base.clock().now() - base_t0;

    let mut walled = build(Some(DeltaWalConfig::default()));
    walled.train_batches(warmup).expect("warmup");
    let wal_t0 = walled.clock().now();
    let wal_stats_t0 = walled.stats().wal;
    walled.train_batches(steady).expect("steady");
    let wal_window = walled.clock().now() - wal_t0;
    let wal_stats = walled.stats().wal;

    let overhead = (wal_window - base_window).as_secs_f64() / base_window.as_secs_f64();
    let sync_us = (wal_stats.sync_time - wal_stats_t0.sync_time).as_secs_f64() * 1e6;
    let appends = (wal_stats.appends - wal_stats_t0.appends).max(1) as f64;
    let bytes = (wal_stats.bytes_appended - wal_stats_t0.bytes_appended) as f64;

    // Crash at the tip: replaying the logged tail is the read-side cost the
    // WAL adds to resume (on top of the checkpoint fetch it rides on).
    walled.simulate_failure_and_restore().expect("restore");
    let resume = walled.stats().resumes.last().expect("resume").clone();

    vec![
        BenchRecord::new(
            "steady_overhead/frac",
            overhead,
            "fraction",
        ),
        BenchRecord::new("sync/us_per_iteration", sync_us / appends, "simulated_us"),
        BenchRecord::new("append/bytes_per_iteration", bytes / appends, "bytes"),
        BenchRecord::new(
            "replay/tail_us",
            resume.wal_replay.as_secs_f64() * 1e6,
            "simulated_us",
        ),
    ]
}

/// The scheme matrix both the quant-latency bench and the trajectory
/// emitter measure.
pub fn quant_schemes() -> Vec<(&'static str, QuantScheme)> {
    vec![
        ("fp32", QuantScheme::Fp32),
        ("symmetric4", QuantScheme::Symmetric { bits: 4 }),
        ("asymmetric4", QuantScheme::Asymmetric { bits: 4 }),
        ("asymmetric8", QuantScheme::Asymmetric { bits: 8 }),
        ("kmeans4", QuantScheme::KMeans { bits: 4 }),
        (
            "adaptive4_b25",
            QuantScheme::AdaptiveAsymmetric {
                bits: 4,
                num_bins: 25,
                ratio: 1.0,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_escaped() {
        let records = vec![
            BenchRecord::new("a/b=1", 12.3456, "ns"),
            BenchRecord::new("quote\"back\\slash", 0.0, "simulated_us")
                .with_ctx("hot_fraction=0.05"),
        ];
        let machine = MachineInfo {
            cores: 4,
            os: "linux",
            arch: "x86_64",
        };
        let json = to_json("restore", "quick", &machine, &records);
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("]\n}\n"));
        assert!(json.contains("\"suite\": \"restore\""));
        assert!(json.contains(
            "\"machine\": { \"cores\": 4, \"os\": \"linux\", \"arch\": \"x86_64\" }"
        ));
        assert!(json.contains("\"id\": \"a/b=1\", \"value\": 12.346, \"unit\": \"ns\""));
        assert!(json.contains("\"unit\": \"simulated_us\", \"ctx\": \"hot_fraction=0.05\""));
        assert!(json.contains("quote\\\"back\\\\slash"));
        // Exactly one comma between the two records (the other `},` closes
        // the machine block), none after the last record.
        assert_eq!(json.matches("},\n").count(), 2);
        assert!(json.contains("\" }\n  ]"));
    }

    #[test]
    fn ready_to_train_is_deterministic_and_scales() {
        let (cfg, snap) = restore_snapshot();
        let one = simulated_ready_to_train(&cfg, &snap, 1);
        let eight = simulated_ready_to_train(&cfg, &snap, 8);
        assert!(eight < one, "more downlinks resume sooner: {one:?} vs {eight:?}");
        assert_eq!(
            one,
            simulated_ready_to_train(&cfg, &snap, 1),
            "simulated values must be exactly reproducible"
        );
    }

    #[test]
    fn first_batch_beats_ready_to_train_at_every_host_count() {
        // The tentpole acceptance bound: at 8 hosts, lazy first-batch must
        // come in at no more than half of full ready-to-train (simulated
        // clock only — both values are machine-independent).
        let (cfg, snap) = restore_snapshot();
        for hosts in [1usize, 2, 4, 8] {
            let (first, ready) =
                simulated_first_batch(&cfg, &snap, hosts, FIRST_BATCH_HOT_FRACTION);
            assert!(
                first < ready,
                "hosts={hosts}: hot set must land before the cold tail \
                 ({first:?} vs {ready:?})"
            );
            if hosts == 8 {
                assert!(
                    first.as_secs_f64() <= 0.5 * ready.as_secs_f64(),
                    "8-host first-batch {first:?} must be ≤ 50% of \
                     ready-to-train {ready:?}"
                );
            }
        }
        let again = simulated_first_batch(&cfg, &snap, 8, FIRST_BATCH_HOT_FRACTION);
        assert_eq!(
            again,
            simulated_first_batch(&cfg, &snap, 8, FIRST_BATCH_HOT_FRACTION),
            "simulated values must be exactly reproducible"
        );
    }

    #[test]
    fn wal_overhead_is_deterministic_and_inside_the_paper_band() {
        let records = wal_records(true);
        assert_eq!(records, wal_records(true), "simulated records must reproduce");
        let frac = records
            .iter()
            .find(|r| r.id == "steady_overhead/frac")
            .expect("overhead record")
            .value;
        // Check-N-Run reports 6-17% overhead for per-iteration
        // checkpointing; the delta WAL must land in the same regime.
        assert!(
            (0.06..=0.17).contains(&frac),
            "steady-state WAL overhead {frac:.4} outside the paper's 6-17% band"
        );
        let replay = records
            .iter()
            .find(|r| r.id == "replay/tail_us")
            .expect("replay record")
            .value;
        assert!(replay > 0.0, "an intact tail must cost nonzero replay time");
    }

    #[test]
    fn decode_wall_clock_is_bit_stable_across_workers() {
        // The wall-clock numbers vary by machine; the restored state must
        // not. (The proptest suite covers this across geometries — this is
        // the trajectory workload's own sanity check.)
        let (cfg, snap) = decode_snapshot(true);
        let store = decode_store(&snap);
        let restore_with = |workers: usize| {
            restore_sharded(
                &store,
                "bench",
                CheckpointId(0),
                &cfg,
                &RestoreOptions {
                    reader_hosts: 1,
                    decode_workers: workers,
                    ..RestoreOptions::default()
                },
                Duration::ZERO,
            )
            .expect("restore")
            .report
            .state
        };
        assert_eq!(restore_with(1), restore_with(4));
    }
}

