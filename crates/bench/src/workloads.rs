//! Shared workload builders for experiments and benches.

use cnr_model::{DlrmModel, ModelConfig};
use cnr_quant::FlatRows;
use cnr_workload::{DatasetSpec, SyntheticDataset, TableAccessSpec};

/// The dataset used by the quantization-quality experiments (Figures 9–13):
/// moderate tables, dim-16 embeddings.
pub fn quant_spec(seed: u64) -> DatasetSpec {
    DatasetSpec {
        seed,
        batch_size: 64,
        dense_dim: 8,
        tables: vec![
            TableAccessSpec::new(30_000, 2, 1.05),
            TableAccessSpec::new(15_000, 1, 0.95),
            TableAccessSpec::new(8_000, 1, 1.1),
        ],
        concept_seed: None,
    }
}

/// The dataset used by the incremental-checkpoint experiments
/// (Figures 15–17), calibrated to the paper's coverage behaviour: a
/// 45% dead mass (categories never seen — why Figure 5 saturates near
/// 52%) and Zipf(0.9) over the active set, with the interval length set so
/// one interval touches ~26% of the model (Figure 6's 30-minute number)
/// and twelve intervals touch ~55% (Figure 5 / Figure 15's one-shot curve).
pub fn incremental_spec(seed: u64) -> DatasetSpec {
    DatasetSpec {
        seed,
        batch_size: 128,
        dense_dim: 4,
        tables: vec![
            TableAccessSpec::new(30_000, 1, 0.9).with_active_fraction(0.55),
            TableAccessSpec::new(30_000, 1, 0.9).with_active_fraction(0.55),
        ],
        concept_seed: None,
    }
}

/// Batches per interval for the incremental experiments: one interval draws
/// `1.75 × active_rows` lookups per table (the solution of
/// `coverage(D) = 26%` for the spec above), i.e. `1.75 × 16.5k / 128`.
pub const INCREMENTAL_INTERVAL_BATCHES: u64 = 225;

/// Trains a model on the quant spec for `batches`, producing the
/// "representative checkpoint" of §5.2 (the paper trains ~18 hours; we
/// train until embeddings are well shaped).
pub fn trained_model(seed: u64, batches: u64, dim: usize) -> (SyntheticDataset, DlrmModel) {
    let spec = quant_spec(seed);
    let ds = SyntheticDataset::new(spec.clone());
    let mut model = DlrmModel::new(ModelConfig::for_dataset(&spec, dim));
    for i in 0..batches {
        model.train_batch(&ds.batch(i), |_, _| {});
    }
    (ds, model)
}

/// Extracts a uniform sample of embedding rows from a trained model into a
/// flat [`FlatRows`] (the unit the quantization-quality sweeps operate on).
pub fn sampled_rows(model: &DlrmModel, per_table: usize) -> FlatRows {
    let dim = model.config().dim();
    let mut data = Vec::new();
    for table in model.tables() {
        let n = table.rows();
        let step = (n / per_table.max(1)).max(1);
        for r in (0..n).step_by(step).take(per_table) {
            data.extend_from_slice(table.row(r));
        }
    }
    FlatRows::new(data, dim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnr_quant::RowSource;

    #[test]
    fn trained_model_learns_something() {
        let (ds, model) = trained_model(5, 150, 8);
        let report = cnr_trainer::evaluate(&model, &ds, 10_000, 10_010);
        assert!(report.logloss < 0.75, "logloss {}", report.logloss);
    }

    #[test]
    fn sampled_rows_shape() {
        let (_, model) = trained_model(5, 10, 8);
        let rows = sampled_rows(&model, 50);
        assert_eq!(rows.dim(), 8);
        assert_eq!(rows.num_rows(), 150); // 3 tables x 50
    }
}
