//! Emits the checked-in bench-trajectory files `BENCH_restore.json`,
//! `BENCH_quant.json`, and `BENCH_wal.json` at the repo root.
//!
//! ```text
//! cargo run --release -p cnr_bench --bin cnr_bench            # full mode
//! cargo run --release -p cnr_bench --bin cnr_bench -- --quick # CI mode
//! cargo run ... -- --timeline    # also emit BENCH_timeline.jsonl + .prom
//! cargo run ... -- --out-dir some/dir                         # elsewhere
//! ```
//!
//! Full mode is what maintainers run before committing a hot-path change;
//! quick mode shrinks the decode workload and round counts so CI can
//! regenerate in seconds. Simulated (`simulated_us`) records are identical
//! in both modes and on every machine; wall-clock (`ns`) records are only
//! comparable within one machine's history, so each document carries a
//! `machine` block (cores/os/arch) identifying the emitter.

use cnr_bench::timeline::lifecycle_timeline;
use cnr_bench::trajectory::{quant_records, restore_records, to_json, wal_records, MachineInfo};
use std::path::PathBuf;

fn main() {
    let mut quick = false;
    let mut timeline = false;
    let mut out_dir = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--timeline" => timeline = true,
            "--out-dir" => {
                out_dir = PathBuf::from(
                    args.next().expect("--out-dir requires a directory argument"),
                );
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: cnr_bench [--quick] [--timeline] [--out-dir <dir>]");
                std::process::exit(2);
            }
        }
    }
    let mode = if quick { "quick" } else { "full" };
    std::fs::create_dir_all(&out_dir).expect("create --out-dir");

    // Wall-clock records are only interpretable next to the machine that
    // produced them; the emitted documents say which one.
    let machine = MachineInfo::current();

    let restore = restore_records(quick);
    let restore_path = out_dir.join("BENCH_restore.json");
    std::fs::write(&restore_path, to_json("restore", mode, &machine, &restore))
        .expect("write BENCH_restore.json");
    println!("wrote {} ({} records)", restore_path.display(), restore.len());

    let quant = quant_records(quick);
    let quant_path = out_dir.join("BENCH_quant.json");
    std::fs::write(&quant_path, to_json("quant", mode, &machine, &quant))
        .expect("write BENCH_quant.json");
    println!("wrote {} ({} records)", quant_path.display(), quant.len());

    let wal = wal_records(quick);
    let wal_path = out_dir.join("BENCH_wal.json");
    std::fs::write(&wal_path, to_json("wal", mode, &machine, &wal))
        .expect("write BENCH_wal.json");
    println!("wrote {} ({} records)", wal_path.display(), wal.len());

    // Opt-in: the checkpoint-lifecycle timeline (Chrome trace_event JSONL)
    // plus a Prometheus-style metrics snapshot. Structure is deterministic
    // but durations mix in wall-clock CPU time (quantize/decode/merge), so
    // the bytes are machine-dependent; validated before writing.
    if timeline {
        let t = match lifecycle_timeline(quick) {
            Ok(t) => t,
            Err(err) => {
                eprintln!("timeline export failed validation: {err}");
                std::process::exit(1);
            }
        };
        let trace_path = out_dir.join("BENCH_timeline.jsonl");
        std::fs::write(&trace_path, &t.trace_jsonl).expect("write BENCH_timeline.jsonl");
        println!("wrote {} ({} spans)", trace_path.display(), t.spans);
        let metrics_path = out_dir.join("BENCH_metrics.prom");
        std::fs::write(&metrics_path, &t.metrics_text).expect("write BENCH_metrics.prom");
        println!("wrote {}", metrics_path.display());
    }
}
