//! `repro` — regenerates the data behind every figure of the Check-N-Run
//! paper.
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [...]
//! repro all
//! ```
//!
//! Experiments: `fig3 fig4 fig5 fig6 fig9 fig10 fig11 fig12 fig13 fig14
//! fig15 fig16 fig17 overheads`. Figures sharing a workload (5/6, 9/10/11,
//! 12/13, 15/16) are produced together; asking for either prints both.
//!
//! Output is CSV with `#` commentary, one block per figure, suitable for
//! piping into a plotting tool. Every block's header states the paper's
//! expected shape for comparison.

use cnr_bench::figures;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <fig3|fig4|fig5|fig6|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig16|fig17|overheads|all> ...");
        std::process::exit(2);
    }
    let mut ran = std::collections::HashSet::new();
    for arg in &args {
        // Figures produced by one experiment share a dedup key.
        let (key, runner): (&str, fn()) = match arg.as_str() {
            "fig3" => ("fig3", figures::fig3::print),
            "fig4" => ("fig4", figures::fig4::print),
            "fig5" | "fig6" => ("fig5_6", figures::fig5_6::print),
            "fig9" | "fig10" | "fig11" => ("fig9_10_11", figures::fig9_10_11::print),
            "fig12" | "fig13" => ("fig12_13", figures::fig12_13::print),
            "fig14" => ("fig14", figures::fig14::print),
            "fig15" | "fig16" => ("fig15_16", figures::fig15_16::print),
            "fig17" => ("fig17", figures::fig17::print),
            "overheads" => ("overheads", figures::overheads::print),
            "ablations" => ("ablations", figures::ablations::print),
            "all" => {
                for f in [
                    figures::fig3::print,
                    figures::fig4::print,
                    figures::fig5_6::print,
                    figures::fig9_10_11::print,
                    figures::fig12_13::print,
                    figures::fig14::print,
                    figures::fig15_16::print,
                    figures::fig17::print,
                    figures::overheads::print,
                    figures::ablations::print,
                ] {
                    f();
                }
                return;
            }
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        };
        if ran.insert(key) {
            runner();
        }
    }
}
