//! §6.1 text claims: snapshot stall and tracking overhead.
//!
//! * Snapshot stall: ≤7 s to copy a 128-GPU model's shards to host memory;
//!   <0.4% of a 30-minute interval.
//! * Tracking: bit-vector marking hidden inside AlltoAll; ≈1% of iteration
//!   time; bit-vector footprint <0.05% of model bytes.
//!
//! Reported two ways: the analytic paper-scale model (`cnr-trainer::comm`,
//! `CheckpointConfig::snapshot_stall`) and live measurements from the
//! simulated engine.

use crate::{f, print_csv};
use cnr_core::CheckpointConfig;
use cnr_model::ModelConfig;
use cnr_tracking::ModificationTracker;
use cnr_trainer::CommModel;
use cnr_workload::{DatasetSpec, SyntheticDataset};
use std::time::{Duration, Instant};

/// Prints the overhead analysis.
pub fn print() {
    let mut rows = Vec::new();

    // Paper-scale snapshot stall: 32 GB HBM shards at 5 GB/s host copy.
    let cfg = CheckpointConfig {
        devices: 128,
        snapshot_bandwidth_per_device: 5.0e9,
        ..CheckpointConfig::default()
    };
    let stall = cfg.snapshot_stall(32 * 1024 * 1024 * 1024);
    let interval = Duration::from_secs(30 * 60);
    rows.push(format!(
        "snapshot_stall_s,{},paper <7s",
        f(stall.as_secs_f64())
    ));
    rows.push(format!(
        "stall_fraction_of_30min,{},paper <0.4%",
        f(stall.as_secs_f64() / interval.as_secs_f64())
    ));

    // Tracking overhead, analytic (hidden in AlltoAll).
    let comm = CommModel::paper_like();
    let costs = comm.iteration(100_000);
    rows.push(format!(
        "tracking_overhead_hidden,{},paper ~1%",
        f(costs.tracking_overhead_hidden())
    ));
    rows.push(format!(
        "tracking_overhead_naive,{},(without AlltoAll hiding)",
        f(costs.tracking_overhead_naive())
    ));

    // Tracker footprint vs model bytes (dim 64 as in production models).
    let tracker = ModificationTracker::new(&[10_000_000]);
    rows.push(format!(
        "tracker_footprint_fraction_dim64,{},paper <0.05%",
        f(tracker.overhead_fraction(64))
    ));

    // Live measurement: marking cost per lookup on this machine.
    let spec = DatasetSpec::medium(3);
    let ds = SyntheticDataset::new(spec.clone());
    let model_cfg = ModelConfig::for_dataset(&spec, 16);
    let tracker = ModificationTracker::new(&model_cfg.row_counts());
    let batches: Vec<_> = (0..50).map(|i| ds.batch(i)).collect();
    let t0 = Instant::now();
    let mut marks = 0u64;
    for b in &batches {
        for (t, idx) in b.sparse.iter().enumerate() {
            for &r in idx {
                tracker.mark(t, r as usize);
                marks += 1;
            }
        }
    }
    let per_mark = t0.elapsed().as_nanos() as f64 / marks as f64;
    rows.push(format!("measured_ns_per_mark,{},(this machine)", f(per_mark)));

    print_csv(
        "overheads: snapshot stall + tracking (paper section 6.1 / 5.1.1)",
        "metric,value,reference",
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_claims_hold_in_our_models() {
        let cfg = CheckpointConfig {
            devices: 128,
            snapshot_bandwidth_per_device: 5.0e9,
            ..CheckpointConfig::default()
        };
        let stall = cfg.snapshot_stall(32 * 1024 * 1024 * 1024);
        assert!(stall < Duration::from_secs(7));
        assert!(stall.as_secs_f64() / (30.0 * 60.0) < 0.004);

        let costs = CommModel::paper_like().iteration(100_000);
        assert!(costs.tracking_overhead_hidden() < 0.02);

        let tracker = ModificationTracker::new(&[1_000_000]);
        assert!(tracker.overhead_fraction(64) < 0.0005);
    }
}
