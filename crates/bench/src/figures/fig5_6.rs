//! Figures 5 and 6: the fraction of the model touched by training.
//!
//! * **Figure 5** — cumulative coverage vs training samples, from three
//!   different starting points. Paper: grows sublinearly, ~52% after 11 B
//!   samples, same shape from any start.
//! * **Figure 6** — coverage inside fixed-length windows (10/20/30/60 min).
//!   Paper: roughly constant per window length; ~26% per 30-minute window.
//!
//! Only the *access pattern* matters, so the experiment samples embedding
//! lookups directly from the Zipf distributions (no model math), which lets
//! it scale to millions of samples in seconds. Samples map to time through
//! the paper's 500K QPS rate, scaled down with the model.

use crate::{f, print_csv};
use cnr_tracking::CoverageAnalyzer;
use cnr_workload::{mix_seed, ZipfSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Access-stream generator matching the coverage experiments: per sample,
/// one lookup per table. Accesses are confined to each table's active set
/// (see [`coverage_tables`]) and spread across the table with a coprime
/// stride, mirroring `cnr-workload`'s dataset behaviour.
pub struct AccessStream {
    samplers: Vec<ZipfSampler>,
    rows: Vec<u64>,
    strides: Vec<u64>,
    rng: StdRng,
}

/// Tables used for the coverage experiments: `(rows, zipf_exponent,
/// active_fraction)`. Calibrated (DESIGN.md §4) so a 30-minute-equivalent
/// window touches ~26% of rows, and cumulative coverage saturates near 55%
/// — the paper's Figure 5/6 regime. The 45% dead mass models categories
/// that are provisioned but never appear in traffic.
pub fn coverage_tables() -> Vec<(u64, f64, f64)> {
    vec![(100_000, 0.9, 0.55), (100_000, 0.9, 0.55)]
}

impl AccessStream {
    /// Creates the stream from `(rows, zipf_exponent, active_fraction)`
    /// table specs.
    pub fn new(tables: &[(u64, f64, f64)], seed: u64) -> Self {
        let samplers = tables
            .iter()
            .map(|&(rows, s, active)| {
                let active_rows = ((rows as f64 * active).round() as u64).clamp(1, rows);
                ZipfSampler::new(active_rows, s).expect("valid zipf")
            })
            .collect();
        let rows: Vec<u64> = tables.iter().map(|&(r, _, _)| r).collect();
        let strides = rows
            .iter()
            .map(|&r| {
                let mut stride = 2_654_435_761u64 % r.max(1);
                if stride == 0 {
                    stride = 1;
                }
                while gcd(stride, r) != 1 {
                    stride += 1;
                }
                stride
            })
            .collect();
        Self {
            samplers,
            rows,
            strides,
            rng: StdRng::seed_from_u64(mix_seed(seed, 0xF156)),
        }
    }

    /// Row counts per table.
    pub fn row_counts(&self) -> Vec<usize> {
        self.rows.iter().map(|&r| r as usize).collect()
    }

    /// Emits the accesses of one training sample into `out`.
    #[inline]
    pub fn next_sample(&mut self, out: &mut Vec<(usize, usize)>) {
        out.clear();
        for (t, sampler) in self.samplers.iter().enumerate() {
            let draw = sampler.sample(&mut self.rng);
            let spread = (draw as u128 * self.strides[t] as u128 % self.rows[t] as u128) as usize;
            out.push((t, spread));
        }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// One cumulative-coverage curve (Figure 5).
pub struct CoverageCurve {
    /// Start offset in samples.
    pub start: u64,
    /// `(samples since start, coverage fraction)`.
    pub points: Vec<(u64, f64)>,
}

/// Runs Figure 5: cumulative coverage from three starting points.
pub fn run_fig5(total_samples: u64, starts: &[u64], record_every: u64) -> Vec<CoverageCurve> {
    let tables = coverage_tables();
    starts
        .iter()
        .map(|&start| {
            let mut stream = AccessStream::new(&tables, 7);
            let mut analyzer = CoverageAnalyzer::new(&stream.row_counts());
            let mut points = Vec::new();
            let mut scratch = Vec::new();
            for s in 0..total_samples {
                stream.next_sample(&mut scratch);
                if s >= start {
                    for &(t, r) in &scratch {
                        analyzer.observe(t, r);
                    }
                    let since = s - start + 1;
                    if since % record_every == 0 {
                        points.push((since, analyzer.fraction()));
                    }
                }
            }
            CoverageCurve { start, points }
        })
        .collect()
}

/// Runs Figure 6: per-window coverage for several window lengths (in
/// samples). Returns `(window_len, fractions per window)`.
pub fn run_fig6(total_samples: u64, window_lens: &[u64]) -> Vec<(u64, Vec<f64>)> {
    let tables = coverage_tables();
    window_lens
        .iter()
        .map(|&wlen| {
            let mut stream = AccessStream::new(&tables, 11);
            let mut analyzer = CoverageAnalyzer::new(&stream.row_counts());
            let mut fractions = Vec::new();
            let mut scratch = Vec::new();
            for s in 0..total_samples {
                if s > 0 && s % wlen == 0 {
                    fractions.push(analyzer.fraction());
                    analyzer.reset();
                }
                stream.next_sample(&mut scratch);
                for &(t, r) in &scratch {
                    analyzer.observe(t, r);
                }
            }
            fractions.push(analyzer.fraction());
            (wlen, fractions)
        })
        .collect()
}

/// Samples per "30-minute" equivalent window: `1.75 × active_rows` draws
/// per table (the `coverage(D) = 26%` calibration point).
pub const SAMPLES_PER_30MIN: u64 = 96_000;

/// Prints both figures.
pub fn print() {
    // Figure 5: ~20 interval-equivalents, starts at 0 / 1/3 / 2/3.
    let total = 20 * SAMPLES_PER_30MIN;
    let starts = [0, total / 3, 2 * total / 3];
    let curves = run_fig5(total, &starts, total / 40);
    let mut rows = Vec::new();
    for c in &curves {
        for (s, frac) in &c.points {
            rows.push(format!("{},{},{}", c.start, s, f(*frac)));
        }
    }
    print_csv(
        "fig5: % of model modified vs samples, 3 starting points (paper: slow sublinear growth, same shape from any start)",
        "start_sample,samples_since_start,fraction_modified",
        &rows,
    );

    // Figure 6: windows of 10/20/30/60 "minutes".
    let minute = SAMPLES_PER_30MIN / 30;
    let windows = [10 * minute, 20 * minute, 30 * minute, 60 * minute];
    let results = run_fig6(2 * SAMPLES_PER_30MIN, &windows);
    let mut rows6 = Vec::new();
    for (wlen, fractions) in &results {
        let minutes = wlen / minute;
        for (i, frac) in fractions.iter().enumerate() {
            rows6.push(format!("{minutes},{i},{}", f(*frac)));
        }
    }
    print_csv(
        "fig6: % of model modified per window (paper: ~constant per length; ~26% per 30min)",
        "window_minutes,window_index,fraction_modified",
        &rows6,
    );
    for (wlen, fractions) in &results {
        let mean: f64 = fractions.iter().sum::<f64>() / fractions.len() as f64;
        println!("# mean coverage, {}min windows: {}", wlen / minute, f(mean));
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_curves_have_same_shape_from_any_start() {
        // The paper's key observation: the modified fraction follows a
        // similar slope regardless of the starting point.
        let total = 300_000;
        let curves = run_fig5(total, &[0, 100_000], 50_000);
        let c0 = &curves[0];
        let c1 = &curves[1];
        // Compare coverage after the same number of samples since start.
        let at = |c: &CoverageCurve, n: u64| {
            c.points
                .iter()
                .find(|(s, _)| *s >= n)
                .map(|(_, f)| *f)
                .unwrap()
        };
        let f0 = at(c0, 100_000);
        let f1 = at(c1, 100_000);
        assert!(
            (f0 - f1).abs() / f0 < 0.15,
            "shapes diverge: {f0} vs {f1}"
        );
    }

    #[test]
    fn fig5_growth_is_sublinear() {
        let curves = run_fig5(400_000, &[0], 100_000);
        let pts = &curves[0].points;
        let quarter = pts[0].1;
        let full = pts.last().unwrap().1;
        assert!(full < 3.0 * quarter, "expected sublinear: {quarter} -> {full}");
        assert!(full < 0.9, "should not saturate the whole model");
    }

    #[test]
    fn fig6_windows_are_stable() {
        let results = run_fig6(400_000, &[100_000]);
        let fractions = &results[0].1;
        assert!(fractions.len() >= 4);
        let mean: f64 = fractions.iter().sum::<f64>() / fractions.len() as f64;
        for frac in fractions {
            assert!(
                (frac - mean).abs() / mean < 0.1,
                "window coverage unstable: {frac} vs mean {mean}"
            );
        }
    }

    #[test]
    fn fig6_longer_windows_cover_more() {
        let results = run_fig6(600_000, &[50_000, 200_000]);
        let short: f64 =
            results[0].1.iter().sum::<f64>() / results[0].1.len() as f64;
        let long: f64 = results[1].1.iter().sum::<f64>() / results[1].1.len() as f64;
        assert!(long > short);
    }
}
