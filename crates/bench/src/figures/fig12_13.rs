//! Figures 12 and 13: adaptive quantization latency.
//!
//! Paper (on a production checkpoint): ≤600 s at 50 bins; asymmetric-only
//! ≈126 s; latency grows with `num_bins` (Figure 12) and with `ratio`
//! (Figure 13, shown at 25 and 45 bins). Absolute seconds depend on
//! checkpoint size, so we report wall-clock on a fixed scaled table *and*
//! the ratio to the asymmetric-only baseline, which is scale-free (paper:
//! adaptive "at least doubles" quantization latency).

use crate::workloads::{sampled_rows, trained_model};
use crate::{f, print_csv};
use cnr_quant::{FlatRows, QuantScheme, RowSource};
use std::time::{Duration, Instant};

/// Quantizes every row of `rows` with `scheme`, returning wall time.
pub fn quantize_all(rows: &FlatRows, scheme: &QuantScheme) -> Duration {
    let t0 = Instant::now();
    for i in 0..rows.num_rows() {
        let q = scheme.quantize_row(rows.row(i));
        std::hint::black_box(&q);
    }
    t0.elapsed()
}

/// Latency sweep over bins (Figure 12) at ratio 1.0.
pub fn run_fig12(rows: &FlatRows, bins_sweep: &[u32], bits: u8) -> Vec<(u32, Duration)> {
    bins_sweep
        .iter()
        .map(|&bins| {
            (
                bins,
                quantize_all(
                    rows,
                    &QuantScheme::AdaptiveAsymmetric {
                        bits,
                        num_bins: bins,
                        ratio: 1.0,
                    },
                ),
            )
        })
        .collect()
}

/// Latency sweep over ratio (Figure 13) at fixed bins.
pub fn run_fig13(rows: &FlatRows, ratios: &[f64], bins: u32, bits: u8) -> Vec<(f64, Duration)> {
    ratios
        .iter()
        .map(|&ratio| {
            (
                ratio,
                quantize_all(
                    rows,
                    &QuantScheme::AdaptiveAsymmetric {
                        bits,
                        num_bins: bins,
                        ratio,
                    },
                ),
            )
        })
        .collect()
}

/// Prints both figures.
pub fn print() {
    let (_, model) = trained_model(42, 300, 16);
    let rows = sampled_rows(&model, 4000);
    let baseline = quantize_all(&rows, &QuantScheme::Asymmetric { bits: 4 });
    println!(
        "# asymmetric-only baseline on {} rows: {} ms (paper: 126 s on a production checkpoint)",
        rows.num_rows(),
        baseline.as_millis()
    );

    let bins_sweep = [5u32, 10, 15, 20, 25, 30, 35, 40, 45, 50];
    let fig12 = run_fig12(&rows, &bins_sweep, 4);
    let out: Vec<String> = fig12
        .iter()
        .map(|(bins, d)| {
            format!(
                "{bins},{},{}",
                d.as_millis(),
                f(d.as_secs_f64() / baseline.as_secs_f64())
            )
        })
        .collect();
    print_csv(
        "fig12: adaptive quantization latency vs bins, ratio=1.0 (paper: grows with bins; <=600s @ 50 bins vs 126s baseline ~ 4.8x)",
        "num_bins,latency_ms,x_vs_asymmetric",
        &out,
    );

    let ratios = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let mut rows13 = Vec::new();
    for bins in [25u32, 45] {
        for (ratio, d) in run_fig13(&rows, &ratios, bins, 4) {
            rows13.push(format!(
                "{bins},{ratio},{},{}",
                d.as_millis(),
                f(d.as_secs_f64() / baseline.as_secs_f64())
            ));
        }
    }
    print_csv(
        "fig13: latency vs ratio at 25 and 45 bins (paper: grows with ratio)",
        "num_bins,ratio,latency_ms,x_vs_asymmetric",
        &rows13,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> FlatRows {
        let (_, model) = trained_model(9, 50, 16);
        sampled_rows(&model, 200)
    }

    #[test]
    fn latency_grows_with_bins() {
        let r = rows();
        let sweep = run_fig12(&r, &[5, 50], 4);
        assert!(
            sweep[1].1 > sweep[0].1,
            "50 bins ({:?}) should cost more than 5 ({:?})",
            sweep[1].1,
            sweep[0].1
        );
    }

    #[test]
    fn latency_grows_with_ratio() {
        let r = rows();
        let sweep = run_fig13(&r, &[0.1, 1.0], 45, 4);
        assert!(sweep[1].1 > sweep[0].1);
    }

    #[test]
    fn adaptive_costs_more_than_naive() {
        let r = rows();
        let naive = quantize_all(&r, &QuantScheme::Asymmetric { bits: 4 });
        let adaptive = run_fig12(&r, &[45], 4)[0].1;
        assert!(
            adaptive > naive * 2,
            "paper: adaptive at least doubles latency ({naive:?} vs {adaptive:?})"
        );
    }
}
