//! Figure 3: training-job failure CDF.
//!
//! Paper: 21 clusters over one month; jobs failing within 5 minutes are
//! excluded; the longest 10% of failed jobs ran ≥13.5 h, the top 1% ≥53.9 h.
//! We drive the paper-calibrated log-normal failure model through the fleet
//! scheduler and report the empirical CDF plus those two checkpoints.

use crate::{f, print_csv};
use cnr_cluster::failure::{empirical_cdf, FailureModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Result of the Figure 3 experiment.
pub struct Fig3 {
    /// `(hours, cumulative fraction)` CDF points.
    pub cdf: Vec<(f64, f64)>,
    /// Time-to-failure at the 90th percentile (paper: 13.5 h).
    pub p90_hours: f64,
    /// Time-to-failure at the 99th percentile (paper: 53.9 h).
    pub p99_hours: f64,
}

/// Runs the experiment with `jobs` sampled failures.
pub fn run(jobs: usize, seed: u64) -> Fig3 {
    let model = FailureModel::paper_calibrated();
    let mut rng = StdRng::seed_from_u64(seed);
    let samples: Vec<Duration> = (0..jobs)
        .filter_map(|_| model.sample(&mut rng))
        .map(|s| s.time_to_failure)
        .collect();
    let cdf = empirical_cdf(&samples, Duration::from_secs(300), 100);
    let at = |q: f64| {
        cdf.iter()
            .find(|(_, frac)| *frac >= q)
            .map(|(h, _)| *h)
            .unwrap_or(f64::NAN)
    };
    Fig3 {
        p90_hours: at(0.90),
        p99_hours: at(0.99),
        cdf,
    }
}

/// Prints the figure data.
pub fn print() {
    let r = run(100_000, 3);
    let rows: Vec<String> = r
        .cdf
        .iter()
        .map(|(h, frac)| format!("{},{}", f(*h), f(*frac)))
        .collect();
    print_csv(
        "fig3: training job failure CDF (paper: P90=13.5h, P99=53.9h)",
        "hours,cum_fraction",
        &rows,
    );
    println!("# measured P90 = {} h (paper 13.5)", f(r.p90_hours));
    println!("# measured P99 = {} h (paper 53.9)", f(r.p99_hours));
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_match_paper() {
        let r = run(200_000, 1);
        assert!((r.p90_hours - 13.5).abs() < 1.5, "P90 {}", r.p90_hours);
        assert!((r.p99_hours - 53.9).abs() < 6.0, "P99 {}", r.p99_hours);
    }

    #[test]
    fn cdf_is_monotone() {
        let r = run(10_000, 2);
        for w in r.cdf.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 < w[1].1);
        }
    }
}
