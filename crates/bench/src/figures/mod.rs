//! One module per paper figure.

pub mod ablations;
pub mod fig12_13;
pub mod fig14;
pub mod fig15_16;
pub mod fig17;
pub mod fig3;
pub mod fig4;
pub mod fig5_6;
pub mod fig9_10_11;
pub mod overheads;
