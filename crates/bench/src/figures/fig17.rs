//! Figure 17: overall bandwidth and capacity reduction.
//!
//! Paper: combining intermittent incremental checkpointing with dynamically
//! selected quantization, relative to a baseline writing full FP32
//! checkpoints every interval:
//!
//! | restores L | bits | bandwidth | capacity |
//! |------------|------|-----------|----------|
//! | L ≤ 1      | 2    | 17×       | 8×       |
//! | 1 < L ≤ 3  | 3    | ~13×      | ~6×      |
//! | 3 < L < 20 | 4    | ~10×      | ~4.5×    |
//! | 20 ≤ L     | 8    | 6×        | 2.5×     |
//!
//! (Middle rows are visual estimates from the figure.) Savings are not
//! proportional to bit-width because of per-row metadata — reproduced here
//! by honest byte accounting in the chunk codec.

use crate::workloads::{incremental_spec, INCREMENTAL_INTERVAL_BATCHES};
use crate::{f, print_csv};
use cnr_core::{CheckpointConfig, EngineBuilder, PolicyKind, QuantMode};
use cnr_model::ModelConfig;

/// One Figure 17 bar pair.
#[derive(Debug, Clone)]
pub struct Fig17Row {
    /// Human-readable restore bucket.
    pub bucket: &'static str,
    /// Expected restores driving the bit-width selection.
    pub expected_restores: u32,
    /// Bit-width the selector chose.
    pub bits: u8,
    /// Average write-bandwidth reduction vs full-FP32-every-interval.
    pub bandwidth_reduction: f64,
    /// Peak-capacity reduction vs one full FP32 checkpoint.
    pub capacity_reduction: f64,
}

/// The paper's four buckets with representative expected-restore counts.
pub fn buckets() -> Vec<(&'static str, u32)> {
    vec![
        ("L<=1", 1),
        ("1<L<=3", 3),
        ("3<L<20", 10),
        ("20<=L", 30),
    ]
}

/// Runs the combined experiment for each bucket.
///
/// Uses production-like dim-64 embeddings: the reduction factors depend on
/// the payload-to-metadata ratio, and the paper's tables are dim ~64.
pub fn run(intervals: u64, seed: u64) -> Vec<Fig17Row> {
    buckets()
        .into_iter()
        .map(|(bucket, expected_restores)| {
            let spec = incremental_spec(seed);
            let model_cfg = ModelConfig::for_dataset(&spec, 64);
            let mut engine = EngineBuilder::new(spec, model_cfg)
                .checkpoint_config(CheckpointConfig {
                    interval_batches: INCREMENTAL_INTERVAL_BATCHES,
                    policy: PolicyKind::Intermittent,
                    quant: QuantMode::Dynamic { expected_restores },
                    ..CheckpointConfig::default()
                })
                .cluster_shape(1, 4)
                .build()
                .expect("engine");
            let bits = engine.current_scheme().bits();
            engine
                .train_batches(intervals * INCREMENTAL_INTERVAL_BATCHES)
                .expect("training");
            Fig17Row {
                bucket,
                expected_restores,
                bits,
                bandwidth_reduction: engine.stats().bandwidth_reduction_vs_full(),
                capacity_reduction: engine.stats().capacity_reduction_vs_full(),
            }
        })
        .collect()
}

/// Prints the figure.
pub fn print() {
    let rows = run(12, 33);
    let out: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{},{},{},{}",
                r.bucket,
                r.expected_restores,
                r.bits,
                f(r.bandwidth_reduction),
                f(r.capacity_reduction)
            )
        })
        .collect();
    print_csv(
        "fig17: overall reduction vs full-fp32-every-interval baseline (paper: bandwidth 17x..6x, capacity 8x..2.5x)",
        "bucket,expected_restores,bits,bandwidth_reduction_x,capacity_reduction_x",
        &out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "slow full-scale figure reproduction; CI runs it via `cargo test -- --ignored`"]
    fn reductions_shrink_as_restores_grow() {
        let rows = run(8, 5);
        assert_eq!(rows[0].bits, 2);
        assert_eq!(rows[3].bits, 8);
        for w in rows.windows(2) {
            assert!(
                w[0].bandwidth_reduction >= w[1].bandwidth_reduction,
                "bandwidth reduction must decrease with wider bits: {:?}",
                rows.iter()
                    .map(|r| r.bandwidth_reduction)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    #[ignore = "slow full-scale figure reproduction; CI runs it via `cargo test -- --ignored`"]
    fn reductions_are_in_the_papers_ballpark() {
        let rows = run(12, 5);
        let best = &rows[0];
        let worst = &rows[3];
        // Shape targets (generous bands around the paper's 17x/6x bandwidth
        // and 8x/2.5x capacity): best bucket far above worst; both well
        // above 1x.
        assert!(
            best.bandwidth_reduction > 8.0,
            "2-bit bucket bandwidth {}x too low (paper 17x)",
            best.bandwidth_reduction
        );
        assert!(
            worst.bandwidth_reduction > 3.0,
            "8-bit bucket bandwidth {}x too low (paper 6x)",
            worst.bandwidth_reduction
        );
        assert!(
            best.capacity_reduction > 3.0,
            "2-bit bucket capacity {}x too low (paper 8x)",
            best.capacity_reduction
        );
        assert!(best.capacity_reduction > worst.capacity_reduction);
        assert!(
            worst.capacity_reduction > 1.3,
            "8-bit bucket capacity {}x too low (paper 2.5x)",
            worst.capacity_reduction
        );
    }
}
