//! Figure 4: normalized model size over two years (paper: >3× growth).
//!
//! Illustrative motivation data — the paper's exact sizes are confidential,
//! so the series is normalized; ours reproduces the shape (exponential
//! growth punctuated by feature launches, 3.3× total).

use crate::{f, print_csv};
use cnr_cluster::growth::{paper_series, GrowthPoint};

/// Runs the experiment.
pub fn run() -> Vec<GrowthPoint> {
    paper_series()
}

/// Prints the figure data.
pub fn print() {
    let series = run();
    let rows: Vec<String> = series
        .iter()
        .map(|p| format!("{},{}", p.month, f(p.normalized_size)))
        .collect();
    print_csv(
        "fig4: normalized model size over 24 months (paper: >3x)",
        "month,normalized_size",
        &rows,
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn final_growth_exceeds_3x() {
        let series = super::run();
        assert!(series.last().unwrap().normalized_size > 3.0);
    }
}
