//! Figure 14: lifetime accuracy degradation from quantized restores.
//!
//! Paper: training jobs of ~4 B records restored from 2/3/4-bit quantized
//! checkpoints, failures uniformly distributed. Findings: one 2-bit restore
//! stays under the 0.01% loss budget but two or more exceed it; 3-bit
//! tolerates up to 3 restores; 4-bit up to 20; 8-bit over 100.
//!
//! We run the same protocol at laptop scale (control vs treated model on an
//! identical stream) and report the held-out logloss gap. Absolute units
//! differ from the paper's accuracy metric; the *ordering* (more restores →
//! more degradation; fewer bits → more degradation) is the reproduced
//! result.

use crate::workloads::quant_spec;
use crate::{f, print_csv};
use cnr_core::accuracy::{restore_degradation, DegradationConfig, DegradationPoint};
use cnr_model::ModelConfig;
use cnr_quant::QuantScheme;

/// One Figure 14 line: a bit-width and restore count with its curve.
pub struct Fig14Line {
    /// Quantization width.
    pub bits: u8,
    /// Restore events in the run.
    pub restores: u32,
    /// Degradation curve.
    pub curve: Vec<DegradationPoint>,
}

/// The paper's line sets: (a) 2-bit × {1,2,3}, (b) 3-bit × {2,3,4},
/// (c) 4-bit × {10,20,30}.
pub fn paper_line_sets() -> Vec<(u8, Vec<u32>)> {
    vec![(2, vec![1, 2, 3]), (3, vec![2, 3, 4]), (4, vec![10, 20, 30])]
}

/// Runs one line.
pub fn run_line(bits: u8, restores: u32, total_batches: u64, seed: u64) -> Fig14Line {
    let spec = quant_spec(seed);
    let model_cfg = ModelConfig::for_dataset(&spec, 16);
    let curve = restore_degradation(
        &spec,
        &model_cfg,
        &DegradationConfig {
            total_batches,
            restores,
            scheme: QuantScheme::recommended_for_bits(bits),
            eval_points: 6,
            eval_batches: 40,
        },
    );
    Fig14Line {
        bits,
        restores,
        curve,
    }
}

/// Prints the figure.
pub fn print() {
    let total_batches = 1500;
    let mut rows = Vec::new();
    for (bits, restore_counts) in paper_line_sets() {
        for restores in restore_counts {
            let line = run_line(bits, restores, total_batches, 42);
            for p in &line.curve {
                rows.push(format!(
                    "{bits},{restores},{},{},{},{}",
                    p.records,
                    f(p.control_logloss),
                    f(p.treated_logloss),
                    f(p.degradation)
                ));
            }
        }
    }
    print_csv(
        "fig14: accuracy degradation vs trained records per (bits, restores) (paper: 2-bit tolerates 1 restore, 3-bit 3, 4-bit 20)",
        "bits,restores,records,control_logloss,treated_logloss,degradation",
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_restores_do_not_reduce_final_degradation() {
        let one = run_line(2, 1, 400, 7);
        let four = run_line(2, 4, 400, 7);
        let last = |l: &Fig14Line| l.curve.last().unwrap().degradation.max(0.0);
        // Noise exists, but 4 restores should not be *cleanly better* than 1.
        assert!(
            last(&four) + 0.02 >= last(&one),
            "4 restores {} vs 1 restore {}",
            last(&four),
            last(&one)
        );
    }

    #[test]
    fn eight_bit_restores_are_nearly_free() {
        let line = run_line(8, 3, 400, 7);
        for p in &line.curve {
            assert!(
                p.degradation.abs() < 0.05,
                "8-bit restore cost {} too high",
                p.degradation
            );
        }
    }
}
