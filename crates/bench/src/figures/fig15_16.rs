//! Figures 15 and 16: incremental-policy bandwidth and capacity.
//!
//! Paper (per 30-minute interval, % of model size, no quantization):
//!
//! * **Figure 15 (bandwidth)** — one-shot's incremental starts ~25% and
//!   exceeds 50% by interval 10; intermittent re-baselines around interval
//!   8; consecutive stays flat (~25%) and averages ~33% less bandwidth over
//!   12 intervals.
//! * **Figure 16 (capacity)** — one-shot holds baseline + latest delta
//!   (grows); consecutive keeps *everything* (≈4× model by interval 11);
//!   intermittent resets to 1× at each re-baseline.

use crate::workloads::{incremental_spec, INCREMENTAL_INTERVAL_BATCHES};
use crate::{f, print_csv};
use cnr_core::{CheckpointConfig, EngineBuilder, IntervalStats, PolicyKind, QuantMode};
use cnr_model::ModelConfig;

/// Per-policy interval series.
pub struct PolicyRun {
    /// The policy simulated.
    pub policy: PolicyKind,
    /// Per-interval stats from the engine.
    pub intervals: Vec<IntervalStats>,
}

/// Runs `intervals` checkpoint intervals under each policy (quantization
/// off, as in the paper's Figures 15/16).
pub fn run(intervals: u64, policies: &[PolicyKind], seed: u64) -> Vec<PolicyRun> {
    policies
        .iter()
        .map(|&policy| {
            let spec = incremental_spec(seed);
            let model_cfg = ModelConfig::for_dataset(&spec, 16);
            let mut engine = EngineBuilder::new(spec, model_cfg)
                .checkpoint_config(CheckpointConfig {
                    interval_batches: INCREMENTAL_INTERVAL_BATCHES,
                    policy,
                    quant: QuantMode::None,
                    // Retain generously: Figures 15/16 measure what each
                    // policy *must* keep, which chain-aware retention
                    // reproduces with one retained chain.
                    retained_chains: 1,
                    ..CheckpointConfig::default()
                })
                .cluster_shape(1, 4)
                .build()
                .expect("engine");
            engine
                .train_batches(intervals * INCREMENTAL_INTERVAL_BATCHES)
                .expect("training");
            PolicyRun {
                policy,
                intervals: engine.stats().intervals.clone(),
            }
        })
        .collect()
}

/// Prints both figures.
pub fn print() {
    let runs = run(
        12,
        &[
            PolicyKind::OneShot,
            PolicyKind::Intermittent,
            PolicyKind::Consecutive,
        ],
        21,
    );

    let mut rows15 = Vec::new();
    let mut rows16 = Vec::new();
    for r in &runs {
        let name = match r.policy {
            PolicyKind::OneShot => "one-shot",
            PolicyKind::Intermittent => "intermittent",
            PolicyKind::Consecutive => "consecutive",
            PolicyKind::FullOnly => "full-only",
        };
        for i in &r.intervals {
            rows15.push(format!(
                "{name},{},{},{:?}",
                i.interval,
                f(i.stored_fraction * 100.0),
                i.kind
            ));
            rows16.push(format!(
                "{name},{},{}",
                i.interval,
                f(i.capacity_fraction * 100.0)
            ));
        }
    }
    print_csv(
        "fig15: checkpoint size per interval, % of model (paper: one-shot 25%->50%+, intermittent re-baselines ~8, consecutive flat)",
        "policy,interval,stored_pct_of_model,kind",
        &rows15,
    );
    print_csv(
        "fig16: storage capacity per interval, % of model (paper: consecutive ~400% @ 11, intermittent resets at re-baseline)",
        "policy,interval,capacity_pct_of_model",
        &rows16,
    );

    // Headline: consecutive's average bandwidth advantage over 12 intervals
    // (paper: ~33% less).
    let avg = |p: PolicyKind| {
        let r = runs.iter().find(|r| r.policy == p).unwrap();
        r.intervals
            .iter()
            .map(|i| i.stored_fraction)
            .sum::<f64>()
            / r.intervals.len() as f64
    };
    let oneshot = avg(PolicyKind::OneShot);
    let consecutive = avg(PolicyKind::Consecutive);
    println!(
        "# consecutive avg bandwidth vs one-shot: {}% less (paper: ~33%)",
        f((1.0 - consecutive / oneshot) * 100.0)
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnr_core::CheckpointKind;

    fn runs() -> Vec<PolicyRun> {
        run(
            6,
            &[
                PolicyKind::OneShot,
                PolicyKind::Consecutive,
                PolicyKind::Intermittent,
            ],
            5,
        )
    }

    #[test]
    #[ignore = "slow full-scale figure reproduction; CI runs it via `cargo test -- --ignored`"]
    fn one_shot_sizes_grow_consecutive_stay_flat() {
        let rs = runs();
        let oneshot = &rs[0].intervals;
        let consecutive = &rs[1].intervals;
        // One-shot incrementals are non-decreasing (supersets).
        let os: Vec<f64> = oneshot[1..].iter().map(|i| i.stored_fraction).collect();
        for w in os.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "one-shot deltas must grow: {os:?}");
        }
        // Consecutive deltas stay within a narrow band.
        let cs: Vec<f64> = consecutive[1..].iter().map(|i| i.stored_fraction).collect();
        let mean = cs.iter().sum::<f64>() / cs.len() as f64;
        for c in &cs {
            assert!((c - mean).abs() / mean < 0.2, "consecutive unstable: {cs:?}");
        }
        // And the last one-shot delta exceeds the consecutive one.
        assert!(os.last().unwrap() > cs.last().unwrap());
    }

    #[test]
    #[ignore = "slow full-scale figure reproduction; CI runs it via `cargo test -- --ignored`"]
    fn consecutive_capacity_outgrows_one_shot() {
        let rs = runs();
        let oneshot_cap = rs[0].intervals.last().unwrap().capacity_fraction;
        let consecutive_cap = rs[1].intervals.last().unwrap().capacity_fraction;
        assert!(
            consecutive_cap > oneshot_cap,
            "consecutive {consecutive_cap} should exceed one-shot {oneshot_cap}"
        );
        // Consecutive capacity must be strictly increasing.
        let caps: Vec<f64> = rs[1]
            .intervals
            .iter()
            .map(|i| i.capacity_fraction)
            .collect();
        for w in caps.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    #[ignore = "slow full-scale figure reproduction; CI runs it via `cargo test -- --ignored`"]
    fn first_incremental_is_roughly_a_quarter() {
        // Calibration check for the paper-comparable starting point.
        let rs = runs();
        let first_incr = rs[0].intervals[1].stored_fraction;
        assert!(
            (0.10..0.45).contains(&first_incr),
            "first incremental {first_incr} out of calibrated band"
        );
    }

    #[test]
    #[ignore = "slow full-scale figure reproduction; CI runs it via `cargo test -- --ignored`"]
    fn intermittent_matches_one_shot_until_rebaseline() {
        let rs = runs();
        let oneshot = &rs[0].intervals;
        let intermittent = &rs[2].intervals;
        for (a, b) in oneshot.iter().zip(intermittent) {
            if b.kind == CheckpointKind::Full && a.kind != CheckpointKind::Full {
                break; // diverged at the re-baseline
            }
            assert!((a.stored_fraction - b.stored_fraction).abs() < 1e-9);
        }
    }
}
