//! Ablation analyses beyond the paper's figures.
//!
//! * **Predictor vs oracle** — how close the paper's greedy `Fc ≤ Ic` rule
//!   gets to the cost-optimal baseline placement (computed by DP on the
//!   same growth profile).
//! * **Checkpoint byte entropy** — why generic compression buys ≤7% (§1):
//!   trained FP32 embedding payloads have near-maximal byte entropy, so
//!   entropy coders have nothing to squeeze; quantization attacks the
//!   value *precision* instead.

use crate::workloads::{sampled_rows, trained_model};
use crate::{f, print_csv};
use cnr_core::predictor::{greedy_schedule, oracle_schedule};
use cnr_quant::{QuantScheme, RowSource};

/// Runs the predictor-vs-oracle comparison on a Figure-5-shaped growth
/// profile. Returns `(intervals, greedy_cost, oracle_cost)`.
pub fn predictor_vs_oracle(max_intervals: usize) -> Vec<(usize, f64, f64)> {
    let growth: Vec<f64> = (0..max_intervals)
        .map(|i| (0.25 + 0.03 * i as f64).min(0.95))
        .collect();
    [6usize, 12, 24, 48]
        .into_iter()
        .filter(|&n| n <= max_intervals)
        .map(|n| {
            let greedy = greedy_schedule(&growth, n);
            let oracle = oracle_schedule(&growth, n);
            (n, greedy.total_cost, oracle.total_cost)
        })
        .collect()
}

/// Shannon entropy of a byte stream, in bits/byte.
pub fn byte_entropy(bytes: &[u8]) -> f64 {
    if bytes.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in bytes {
        counts[b as usize] += 1;
    }
    let n = bytes.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Entropy of checkpoint payloads under different schemes:
/// `(scheme name, bits_per_byte, payload_bytes)`.
pub fn payload_entropy() -> Vec<(&'static str, f64, usize)> {
    let (_, model) = trained_model(42, 300, 16);
    let rows = sampled_rows(&model, 1500);
    [
        ("fp32", QuantScheme::Fp32),
        ("asymmetric8", QuantScheme::Asymmetric { bits: 8 }),
        ("asymmetric4", QuantScheme::Asymmetric { bits: 4 }),
        ("asymmetric2", QuantScheme::Asymmetric { bits: 2 }),
    ]
    .into_iter()
    .map(|(name, scheme)| {
        let mut payload = Vec::new();
        for i in 0..rows.num_rows() {
            payload.extend_from_slice(&scheme.quantize_row(rows.row(i)).payload);
        }
        (name, byte_entropy(&payload), payload.len())
    })
    .collect()
}

/// Prints both ablations.
pub fn print() {
    let rows: Vec<String> = predictor_vs_oracle(48)
        .into_iter()
        .map(|(n, g, o)| format!("{n},{},{},{}", f(g), f(o), f(g / o)))
        .collect();
    print_csv(
        "ablation: intermittent predictor vs DP oracle (total bytes as multiples of one full ckpt)",
        "intervals,greedy_cost,oracle_cost,greedy_over_oracle",
        &rows,
    );

    let rows: Vec<String> = payload_entropy()
        .into_iter()
        .map(|(name, h, bytes)| format!("{name},{},{bytes}", f(h)))
        .collect();
    print_csv(
        "ablation: checkpoint payload byte entropy (fp32 near 8 bits/byte => zstd <=7%, paper section 1)",
        "scheme,entropy_bits_per_byte,payload_bytes",
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_stays_close_to_oracle() {
        for (n, greedy, oracle) in predictor_vs_oracle(48) {
            assert!(oracle <= greedy + 1e-9);
            assert!(
                greedy / oracle < 1.3,
                "greedy {greedy} too far from oracle {oracle} at n={n}"
            );
        }
    }

    #[test]
    fn entropy_of_uniform_bytes_is_eight_bits() {
        let all: Vec<u8> = (0..=255u8).cycle().take(256 * 64).collect();
        assert!((byte_entropy(&all) - 8.0).abs() < 1e-9);
        assert_eq!(byte_entropy(&[]), 0.0);
        assert_eq!(byte_entropy(&[7u8; 100]), 0.0);
    }

    #[test]
    fn fp32_payload_is_near_incompressible() {
        let e = payload_entropy();
        let fp32 = e.iter().find(|(n, _, _)| *n == "fp32").unwrap().1;
        assert!(
            fp32 > 6.0,
            "trained fp32 embedding bytes should be high-entropy, got {fp32} bits/byte"
        );
    }
}
