//! Figures 9–11: quantization quality sweeps on a trained checkpoint.
//!
//! * **Figure 9** — mean ℓ2 error of symmetric / asymmetric / k-means /
//!   adaptive-asymmetric at 2/3/4/8 bits. Paper: asymmetric ≫ symmetric;
//!   k-means ≈ adaptive, both best; ordering stable across widths.
//! * **Figure 10** — ℓ2 improvement of adaptive over naive asymmetric as a
//!   function of `num_bins` (paper: tapers off; optima ~25 bins for 2–3
//!   bits, ~45 for 4 bits; up to ~25% improvement at 2 bits).
//! * **Figure 11** — improvement vs `ratio` at the optimal bins (paper:
//!   lower bit-widths are more ratio-sensitive).

use crate::workloads::{sampled_rows, trained_model};
use crate::{f, print_csv};
use cnr_quant::{mean_l2_error, FlatRows, QuantScheme};

/// Mean ℓ2 errors for one bit-width (Figure 9 bar group).
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Quantization width.
    pub bits: u8,
    /// Uniform symmetric error.
    pub symmetric: f64,
    /// Uniform asymmetric error.
    pub asymmetric: f64,
    /// K-means (15 Lloyd iterations) error.
    pub kmeans: f64,
    /// Adaptive asymmetric error (paper-optimal bins, ratio 1.0).
    pub adaptive: f64,
}

/// The checkpoint rows all three figures sweep over.
pub fn checkpoint_rows(train_batches: u64, rows_per_table: usize) -> FlatRows {
    let (_, model) = trained_model(42, train_batches, 16);
    sampled_rows(&model, rows_per_table)
}

/// Paper-optimal bins per bit-width (Figure 10's tapering points).
pub fn optimal_bins(bits: u8) -> u32 {
    if bits >= 4 {
        45
    } else {
        25
    }
}

/// Runs Figure 9 on the given rows.
pub fn run_fig9(rows: &FlatRows) -> Vec<Fig9Row> {
    [2u8, 3, 4, 8]
        .into_iter()
        .map(|bits| Fig9Row {
            bits,
            symmetric: mean_l2_error(rows, &QuantScheme::Symmetric { bits }),
            asymmetric: mean_l2_error(rows, &QuantScheme::Asymmetric { bits }),
            kmeans: mean_l2_error(rows, &QuantScheme::KMeans { bits }),
            adaptive: mean_l2_error(
                rows,
                &QuantScheme::AdaptiveAsymmetric {
                    bits,
                    num_bins: optimal_bins(bits),
                    ratio: 1.0,
                },
            ),
        })
        .collect()
}

/// Runs Figure 10: `(bits, bins, improvement)` triples.
pub fn run_fig10(rows: &FlatRows, bins_sweep: &[u32]) -> Vec<(u8, u32, f64)> {
    let mut out = Vec::new();
    for bits in [2u8, 3, 4] {
        let baseline = mean_l2_error(rows, &QuantScheme::Asymmetric { bits });
        for &bins in bins_sweep {
            let err = mean_l2_error(
                rows,
                &QuantScheme::AdaptiveAsymmetric {
                    bits,
                    num_bins: bins,
                    ratio: 1.0,
                },
            );
            out.push((bits, bins, improvement(baseline, err)));
        }
    }
    out
}

/// Runs Figure 11: `(bits, ratio, improvement)` triples at optimal bins.
pub fn run_fig11(rows: &FlatRows, ratio_sweep: &[f64]) -> Vec<(u8, f64, f64)> {
    let mut out = Vec::new();
    for bits in [2u8, 3, 4] {
        let baseline = mean_l2_error(rows, &QuantScheme::Asymmetric { bits });
        for &ratio in ratio_sweep {
            let err = mean_l2_error(
                rows,
                &QuantScheme::AdaptiveAsymmetric {
                    bits,
                    num_bins: optimal_bins(bits),
                    ratio,
                },
            );
            out.push((bits, ratio, improvement(baseline, err)));
        }
    }
    out
}

fn improvement(baseline: f64, err: f64) -> f64 {
    if baseline <= f64::EPSILON {
        0.0
    } else {
        (baseline - err) / baseline
    }
}

/// Prints all three figures.
pub fn print() {
    let rows = checkpoint_rows(800, 700);

    let fig9 = run_fig9(&rows);
    let out: Vec<String> = fig9
        .iter()
        .map(|r| {
            format!(
                "{},{},{},{},{}",
                r.bits,
                f(r.symmetric),
                f(r.asymmetric),
                f(r.kmeans),
                f(r.adaptive)
            )
        })
        .collect();
    print_csv(
        "fig9: mean L2 error by scheme (paper: sym worst; kmeans ~ adaptive best)",
        "bits,symmetric,asymmetric,kmeans,adaptive",
        &out,
    );

    let bins_sweep = [5u32, 10, 15, 20, 25, 30, 35, 40, 45, 50];
    let fig10 = run_fig10(&rows, &bins_sweep);
    let out10: Vec<String> = fig10
        .iter()
        .map(|(bits, bins, imp)| format!("{bits},{bins},{}", f(*imp * 100.0)))
        .collect();
    print_csv(
        "fig10: adaptive L2 improvement over naive asymmetric vs num_bins (%) (paper: tapers; 2-bit gains most)",
        "bits,num_bins,improvement_pct",
        &out10,
    );

    let ratio_sweep = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let fig11 = run_fig11(&rows, &ratio_sweep);
    let out11: Vec<String> = fig11
        .iter()
        .map(|(bits, ratio, imp)| format!("{bits},{ratio},{}", f(*imp * 100.0)))
        .collect();
    print_csv(
        "fig11: improvement vs ratio at optimal bins (%) (paper: low bit-widths most ratio-sensitive)",
        "bits,ratio,improvement_pct",
        &out11,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> FlatRows {
        checkpoint_rows(150, 150)
    }

    #[test]
    fn fig9_ordering_matches_paper() {
        let results = run_fig9(&rows());
        for r in &results {
            assert!(
                r.asymmetric <= r.symmetric,
                "bits {}: asym {} > sym {}",
                r.bits,
                r.asymmetric,
                r.symmetric
            );
            assert!(
                r.adaptive <= r.asymmetric + 1e-12,
                "bits {}: adaptive must not lose to naive",
                r.bits
            );
        }
        // Error decreases with bit-width for every scheme.
        for w in results.windows(2) {
            assert!(w[1].asymmetric < w[0].asymmetric);
        }
    }

    #[test]
    fn fig10_improvement_is_positive_and_tapers() {
        let sweep = run_fig10(&rows(), &[5, 25, 50]);
        let two_bit: Vec<f64> = sweep
            .iter()
            .filter(|(b, _, _)| *b == 2)
            .map(|(_, _, i)| *i)
            .collect();
        assert!(two_bit[1] > 0.01, "2-bit adaptive should improve >1%");
        // Going 25 -> 50 bins gains much less than 5 -> 25.
        let early_gain = two_bit[1] - two_bit[0];
        let late_gain = (two_bit[2] - two_bit[1]).abs();
        assert!(late_gain < early_gain.max(0.01), "no taper: {two_bit:?}");
    }

    #[test]
    fn fig11_ratio_one_recovers_full_improvement() {
        let r = rows();
        let full = run_fig10(&r, &[25]);
        let sweep = run_fig11(&r, &[1.0]);
        let f10 = full.iter().find(|(b, _, _)| *b == 2).unwrap().2;
        let f11 = sweep.iter().find(|(b, _, _)| *b == 2).unwrap().2;
        assert!((f10 - f11).abs() < 1e-9, "ratio=1 must equal the bins sweep");
    }
}
