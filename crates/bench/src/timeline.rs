//! Checkpoint-lifecycle timeline export: runs one full engine scenario —
//! checkpoints, an injected failure mid-drain, a lazy restore with WAL
//! tail replay and fault-ins, a background scrub — and exports what the
//! engine's observability pipeline recorded as a Chrome
//! `trace_event`-compatible JSONL timeline plus a Prometheus-style text
//! metrics snapshot.
//!
//! The timeline's *structure* (which spans, nesting, counts) is
//! deterministic — every lifecycle event is batch-count driven — but the
//! durations mix simulated transfer time with measured CPU time
//! (quantize, decode, and merge are wall-clock, exactly as in
//! [`crate::trajectory`]'s `ns` records), so byte-level content is
//! machine-dependent and the artifact is opt-in output, not checked in.
//! Open the JSONL in any `chrome://tracing`-compatible viewer (wrap the
//! lines in a JSON array) to see the §4.3 overlap: quantize and upload
//! spans running concurrent with the next interval's snapshot stall.

use cnr_core::config::DeltaWalConfig;
use cnr_core::engine::{Engine, EngineBuilder};
use cnr_model::ModelConfig;
use cnr_storage::RemoteConfig;
use cnr_workload::DatasetSpec;
use std::time::Duration;

/// The exported timeline plus its metrics snapshot, pre-validated.
pub struct TimelineArtifacts {
    /// Chrome `trace_event` JSONL: one complete-event object per line,
    /// timestamps in simulated microseconds, monotone non-decreasing.
    pub trace_jsonl: String,
    /// Prometheus-style text exposition of the engine's whole metrics
    /// registry (counters, gauges, histogram buckets).
    pub metrics_text: String,
    /// Spans recorded by the scenario (one JSONL line each).
    pub spans: usize,
}

/// Builds the scenario engine: 4 writer hosts, 2 reader hosts, lazy
/// restores over a slow store (so phase durations are visible), a delta
/// WAL, and scheduled scrubbing.
fn scenario_engine(seed: u64) -> Engine {
    let spec = DatasetSpec::tiny(seed);
    let model_cfg = ModelConfig::for_dataset(&spec, 8);
    EngineBuilder::new(spec, model_cfg)
        .checkpoint_every_batches(5)
        .cluster_shape(1, 2)
        .writer_hosts(4)
        .reader_hosts(2)
        .lazy_restore(0.05)
        .delta_wal(DeltaWalConfig::default())
        .scrub_every(Duration::from_millis(1))
        .remote_config(RemoteConfig {
            bandwidth_bytes_per_sec: 64.0 * 1024.0,
            base_latency: Duration::from_micros(100),
            replication: 1,
            channels: 2,
        })
        .build()
        .expect("scenario engine")
}

/// Runs the full checkpoint-lifecycle scenario and exports its timeline.
/// `quick` shortens the post-restore tail (CI mode); the lifecycle
/// coverage — checkpoint, failure, lazy restore, WAL replay, drain,
/// scrub — is identical in both modes.
///
/// The export is validated before it is returned: the span tree must
/// satisfy every structural invariant and the JSONL must frame-parse
/// with monotone timestamps. Errors are returned, not panicked, so the
/// caller decides how loudly to fail.
pub fn lifecycle_timeline(quick: bool) -> Result<TimelineArtifacts, String> {
    let mut e = scenario_engine(101);
    let tail = if quick { 2 } else { 7 };
    e.train_batches(13).map_err(|err| err.to_string())?;
    e.simulate_failure_and_restore()
        .map_err(|err| err.to_string())?;
    e.train_batches(tail).map_err(|err| err.to_string())?;
    e.drain_lazy_restore().map_err(|err| err.to_string())?;
    e.scrub_now(None).map_err(|err| err.to_string())?;

    let spans = e.obs().spans();
    cnr_obs::span::validate_tree(&spans)
        .map_err(|err| format!("span tree invariant violated: {err}"))?;
    let trace_jsonl = cnr_obs::export::chrome_trace_jsonl(&spans);
    cnr_obs::export::validate_trace_jsonl(&trace_jsonl)
        .map_err(|err| format!("trace schema violated: {err}"))?;
    let metrics_text = cnr_obs::export::prometheus_text(&e.obs().registry().snapshot());
    Ok(TimelineArtifacts {
        trace_jsonl,
        metrics_text,
        spans: spans.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_covers_the_whole_lifecycle_and_validates() {
        let t = lifecycle_timeline(true).unwrap();
        assert_eq!(t.trace_jsonl.lines().count(), t.spans);
        for name in [
            "\"name\":\"checkpoint\"",
            "\"name\":\"checkpoint.upload\"",
            "\"name\":\"restore\"",
            "\"name\":\"restore.fetch.host\"",
            "\"name\":\"restore.wal_replay\"",
            "\"name\":\"wal.sync\"",
            "\"name\":\"scrub.sweep\"",
        ] {
            assert!(t.trace_jsonl.contains(name), "timeline must contain {name}");
        }
        assert!(t.metrics_text.contains("cnr_restore_resumes_total 1"));
        assert!(t.metrics_text.contains("cnr_checkpoint_intervals_total"));
        assert!(t.metrics_text.contains("cnr_wal_appends_total"));
        assert!(t.metrics_text.contains("cnr_scrub_sweeps_total"));
    }

    /// Durations include wall-clock CPU time (quantize/decode/merge), so
    /// byte-identity across runs is NOT expected; the *structure* — which
    /// spans exist, how many of each — is batch-count driven and must match.
    #[test]
    fn timeline_structure_is_deterministic() {
        let a = lifecycle_timeline(true).unwrap();
        let b = lifecycle_timeline(true).unwrap();
        assert_eq!(a.spans, b.spans, "span count is batch-count driven");
        let names = |t: &TimelineArtifacts| {
            let mut v: Vec<String> = t
                .trace_jsonl
                .lines()
                .map(|line| {
                    cnr_obs::json::find_raw_value(line, "name")
                        .expect("every trace line has a name")
                        .to_string()
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(names(&a), names(&b), "same multiset of span names");
    }
}
