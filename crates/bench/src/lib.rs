//! Experiment harness regenerating every figure of the Check-N-Run paper.
//!
//! Each `figN` module produces the data series of the corresponding figure,
//! printed as CSV with `#`-prefixed commentary. The `repro` binary
//! dispatches on figure ids; criterion benches under `benches/` reuse the
//! same workload builders for wall-clock measurements.
//!
//! Scale: the paper's model is O(TB) on 128 GPUs; these experiments use
//! laptop-scale models and report the same *normalized* quantities the
//! paper plots (% of model size, ℓ2 error, reduction factors), so shapes
//! are directly comparable. `EXPERIMENTS.md` records paper-vs-measured per
//! figure.

pub mod figures;
pub mod timeline;
pub mod trajectory;
pub mod workloads;

/// Prints a CSV header and rows with a `# <title>` preamble.
pub fn print_csv(title: &str, header: &str, rows: &[String]) {
    println!("# {title}");
    println!("{header}");
    for r in rows {
        println!("{r}");
    }
    println!();
}

/// Formats a float with fixed precision, trimming noise.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else if x.abs() >= 1.0 {
        format!("{x:.3}")
    } else {
        format!("{x:.6}")
    }
}
