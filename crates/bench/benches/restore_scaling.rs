//! Restore-scaling bench: the same checkpoint restored over 1/2/4/8
//! reader hosts.
//!
//! Two quantities matter and the bench reports both:
//!
//! * **wall time** (criterion's measurement) — the bookkeeping cost of the
//!   sharded recovery pipeline; and
//! * **simulated ready-to-train time** (printed once per host count, and
//!   asserted: multi-host must beat single-host) — the §2/§5 downtime the
//!   paper's availability model cares about, which drops near-linearly
//!   with hosts because each host fetches its share over its own downlink.

use cnr_cluster::SimClock;
use cnr_core::config::CheckpointConfig;
use cnr_core::manifest::{CheckpointId, CheckpointKind};
use cnr_core::policy::{Decision, TrackerAction};
use cnr_core::read::{restore_sharded, RestoreOptions};
use cnr_core::snapshot::SnapshotTaker;
use cnr_core::write::CheckpointWriter;
use cnr_core::TrainingSnapshot;
use cnr_model::{DlrmModel, ModelConfig, ShardPlan};
use cnr_quant::QuantScheme;
use cnr_reader::ReaderState;
use cnr_storage::{RemoteConfig, SimulatedRemoteStore};
use cnr_trainer::{Trainer, TrainerConfig};
use cnr_workload::{DatasetSpec, SyntheticDataset};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn snapshot() -> (ModelConfig, TrainingSnapshot) {
    let spec = DatasetSpec::tiny(2424);
    let ds = SyntheticDataset::new(spec.clone());
    let cfg = ModelConfig::for_dataset(&spec, 16);
    let model = DlrmModel::new(cfg.clone());
    let mut trainer = Trainer::new(model, SimClock::new(), TrainerConfig::default());
    for i in 0..3 {
        trainer.train_one(&ds.batch(i));
    }
    let snap = SnapshotTaker::new(ShardPlan::balanced(&cfg, 1, 2)).take(
        &mut trainer,
        ReaderState::at(3),
        Decision {
            kind: CheckpointKind::Full,
            tracker: TrackerAction::SnapshotReset,
        },
        &CheckpointConfig::default(),
    );
    (cfg, snap)
}

/// Writes the checkpoint once and restores it over `hosts` reader hosts,
/// returning the simulated time from failure to ready-to-train.
fn restore_once(model_cfg: &ModelConfig, snap: &TrainingSnapshot, hosts: usize) -> Duration {
    let store = SimulatedRemoteStore::new(
        RemoteConfig {
            bandwidth_bytes_per_sec: 4.0 * 1024.0 * 1024.0,
            base_latency: Duration::from_micros(200),
            replication: 1,
            channels: hosts as u32,
        },
        SimClock::new(),
    );
    let writer = CheckpointWriter::new(&store, "bench");
    let cfg = CheckpointConfig {
        // 24 chunks over the two tiny tables: divisible by 8 reader hosts,
        // so the printed scaling approaches the ideal 8x.
        chunk_rows: 64,
        ..CheckpointConfig::default()
    };
    writer
        .write(snap, CheckpointId(0), None, QuantScheme::Fp32, &cfg)
        .expect("write");
    let failed_at = store.wait_for_drain();
    let sharded = restore_sharded(
        &store,
        "bench",
        CheckpointId(0),
        model_cfg,
        &RestoreOptions {
            reader_hosts: hosts,
            ..RestoreOptions::default()
        },
        failed_at,
    )
    .expect("restore");
    sharded.breakdown.fetch
}

fn restore_scaling(c: &mut Criterion) {
    let (model_cfg, snap) = snapshot();
    let mut group = c.benchmark_group("restore");
    group.sample_size(10);
    let mut ready = Vec::new();
    for hosts in [1usize, 2, 4, 8] {
        let t = restore_once(&model_cfg, &snap, hosts);
        println!("# restore/{hosts}: simulated ready-to-train {t:?}");
        ready.push((hosts, t));
        group.bench_with_input(BenchmarkId::from_parameter(hosts), &hosts, |b, &hosts| {
            b.iter(|| restore_once(&model_cfg, &snap, hosts));
        });
    }
    group.finish();
    // The acceptance property, enforced wherever the bench runs (including
    // CI's smoke step): multi-host restore beats single-host.
    let one = ready[0].1;
    let eight = ready[3].1;
    assert!(
        eight.as_secs_f64() < 0.5 * one.as_secs_f64(),
        "8-host restore must beat 1-host: {ready:?}"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = restore_scaling
}
criterion_main!(benches);
