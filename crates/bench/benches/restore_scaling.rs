//! Restore-scaling bench: the same checkpoint restored over 1/2/4/8
//! reader hosts, plus the serial-vs-threaded decode comparison.
//!
//! Three quantities matter and the bench reports all of them:
//!
//! * **wall time** (criterion's measurement) — the bookkeeping cost of the
//!   sharded recovery pipeline;
//! * **simulated ready-to-train time** (printed once per host count, and
//!   asserted: multi-host must beat single-host) — the §2/§5 downtime the
//!   paper's availability model cares about, which drops near-linearly
//!   with hosts because each host fetches its share over its own downlink;
//! * **decode wall-clock, 1 vs 4 worker threads** — the CPU half of
//!   time-to-resume. The ratio is *reported*, not asserted: whether four
//!   threads beat one is a property of the machine (core count, CPU
//!   quota, co-tenants), so a hard wall-clock assertion would fail
//!   deterministically on single-core hosts and flakily on shared CI
//!   runners. The checked-in `BENCH_restore.json` records both values
//!   alongside the emitting machine's core count, so the trajectory stays
//!   interpretable; the only assertion here is a generous pathology guard
//!   against convoying (threaded decode catastrophically slower than
//!   serial, e.g. a lock held across the decode stage).
//!
//! The measurement functions live in `cnr_bench::trajectory`, shared with
//! the `cnr_bench` binary that writes the checked-in `BENCH_restore.json`.

use cnr_bench::trajectory::{
    decode_snapshot, decode_store, decode_wall_clock, restore_snapshot,
    simulated_ready_to_train,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn restore_scaling(c: &mut Criterion) {
    let (model_cfg, snap) = restore_snapshot();
    let mut group = c.benchmark_group("restore");
    group.sample_size(10);
    let mut ready = Vec::new();
    for hosts in [1usize, 2, 4, 8] {
        let t = simulated_ready_to_train(&model_cfg, &snap, hosts);
        println!("# restore/{hosts}: simulated ready-to-train {t:?}");
        ready.push((hosts, t));
        group.bench_with_input(BenchmarkId::from_parameter(hosts), &hosts, |b, &hosts| {
            b.iter(|| simulated_ready_to_train(&model_cfg, &snap, hosts));
        });
    }
    group.finish();
    // The acceptance property, enforced wherever the bench runs (including
    // CI's smoke step): multi-host restore beats single-host.
    let one = ready[0].1;
    let eight = ready[3].1;
    assert!(
        eight.as_secs_f64() < 0.5 * one.as_secs_f64(),
        "8-host restore must beat 1-host: {ready:?}"
    );
}

fn decode_scaling(c: &mut Criterion) {
    // `cargo test` runs this in smoke mode (no `--bench` in args): use the
    // quick workload and fewer rounds so the smoke pass stays cheap.
    let full = std::env::args().any(|a| a == "--bench");
    let (model_cfg, snap) = decode_snapshot(!full);
    let store = decode_store(&snap);
    let rounds = if full { 5 } else { 2 };
    let serial = decode_wall_clock(&store, &model_cfg, 1, rounds);
    let threaded = decode_wall_clock(&store, &model_cfg, 4, rounds);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let ratio = threaded.as_secs_f64() / serial.as_secs_f64().max(f64::EPSILON);
    println!(
        "# decode wall-clock on {cores} core(s): 1 worker {serial:?}, \
         4 workers {threaded:?} (threaded/serial = {ratio:.3})"
    );
    // Pathology guard, not a speedup claim: wall-clock orderings are
    // machine-dependent (on a 1-core host threading can only lose by its
    // overhead), but threaded decode running *several times* slower than
    // serial means the workers convoyed — e.g. the per-host issuance lock
    // held across the decode stage. The additive slack absorbs thread
    // spawn/join overhead on the smoke-mode workload.
    assert!(
        threaded < serial * 3 + Duration::from_millis(50),
        "threaded decode convoyed: 1 worker {serial:?}, 4 workers {threaded:?}"
    );
    let mut group = c.benchmark_group("decode");
    group.sample_size(10);
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| decode_wall_clock(&store, &model_cfg, workers, 1));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = restore_scaling, decode_scaling
}
criterion_main!(benches);
