//! Ablation benches for the design choices called out in DESIGN.md §5:
//! chunk size in the writer pipeline, tracking granularity, and the
//! sampling-based parameter selection.

use cnr_bench::workloads::{sampled_rows, trained_model};
use cnr_core::config::CheckpointConfig;
use cnr_core::manifest::{CheckpointId, CheckpointKind};
use cnr_core::policy::{Decision, TrackerAction};
use cnr_core::snapshot::SnapshotTaker;
use cnr_core::write::CheckpointWriter;
use cnr_cluster::SimClock;
use cnr_model::ShardPlan;
use cnr_quant::{ParamSelector, QuantScheme};
use cnr_reader::ReaderState;
use cnr_storage::InMemoryStore;
use cnr_tracking::AtomicBitVec;
use cnr_trainer::{Trainer, TrainerConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Ablation 1: chunk size — pipelining granularity vs per-chunk overhead.
fn chunk_size(c: &mut Criterion) {
    let (ds, model) = trained_model(1, 50, 16);
    let model_cfg = model.config().clone();
    let plan = ShardPlan::balanced(&model_cfg, 1, 4);
    let mut trainer = Trainer::new(model, SimClock::new(), TrainerConfig::default());
    for i in 50..55 {
        trainer.train_one(&ds.batch(i));
    }
    let snapshot = SnapshotTaker::new(plan).take(
        &mut trainer,
        ReaderState::at(55),
        Decision {
            kind: CheckpointKind::Full,
            tracker: TrackerAction::SnapshotKeep,
        },
        &CheckpointConfig::default(),
    );
    let mut group = c.benchmark_group("ablation_chunk_rows");
    group.sample_size(10);
    for chunk_rows in [256usize, 4096, 65536] {
        group.bench_with_input(
            BenchmarkId::from_parameter(chunk_rows),
            &chunk_rows,
            |b, &chunk_rows| {
                let cfg = CheckpointConfig {
                    chunk_rows,
                    quantize_workers: 2,
                    ..CheckpointConfig::default()
                };
                b.iter(|| {
                    let store = InMemoryStore::new();
                    let writer = CheckpointWriter::new(&store, "bench");
                    black_box(
                        writer
                            .write(
                                &snapshot,
                                CheckpointId(0),
                                None,
                                QuantScheme::Asymmetric { bits: 4 },
                                &cfg,
                            )
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

/// Ablation 2: tracking granularity — one bit per row vs one bit per group
/// of rows (smaller bit-vector, coarser deltas).
fn tracking_granularity(c: &mut Criterion) {
    let rows = 1_000_000usize;
    let mut group = c.benchmark_group("ablation_tracking_granularity");
    for group_size in [1usize, 8, 64] {
        let bv = AtomicBitVec::new(rows / group_size);
        group.bench_with_input(
            BenchmarkId::from_parameter(group_size),
            &group_size,
            |b, &gs| {
                let mut i = 0usize;
                b.iter(|| {
                    bv.set(((i * 7919) % rows) / gs);
                    i += 1;
                })
            },
        );
    }
    group.finish();
}

/// Ablation 3: sampled vs full-checkpoint parameter selection (§5.2).
fn parameter_selection(c: &mut Criterion) {
    let (_, model) = trained_model(1, 100, 16);
    let rows = sampled_rows(&model, 1000);
    let mut group = c.benchmark_group("ablation_param_selection");
    group.sample_size(10);
    for (name, fraction) in [("sampled_1pct", 0.01), ("full", 1.0)] {
        group.bench_function(name, |b| {
            let selector = ParamSelector {
                sample_fraction: fraction,
                min_sample: 16,
                bins_candidates: vec![5, 25, 45],
                ratio_candidates: vec![0.5, 1.0],
                ..ParamSelector::default()
            };
            b.iter(|| black_box(selector.select(&rows, 4)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = chunk_size, tracking_granularity, parameter_selection
}
criterion_main!(benches);
