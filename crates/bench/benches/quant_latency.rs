//! Quantization micro-benchmarks backing Figures 12/13: per-row cost of
//! each scheme, and the adaptive scheme's bins/ratio scaling.

use cnr_bench::workloads::{sampled_rows, trained_model};
use cnr_quant::{QuantScheme, RowSource};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn schemes(c: &mut Criterion) {
    let (_, model) = trained_model(1, 100, 16);
    let rows = sampled_rows(&model, 64);
    let mut group = c.benchmark_group("quantize_row");
    for (name, scheme) in [
        ("fp32", QuantScheme::Fp32),
        ("symmetric4", QuantScheme::Symmetric { bits: 4 }),
        ("asymmetric4", QuantScheme::Asymmetric { bits: 4 }),
        ("asymmetric8", QuantScheme::Asymmetric { bits: 8 }),
        ("kmeans4", QuantScheme::KMeans { bits: 4 }),
        (
            "adaptive4_b25",
            QuantScheme::AdaptiveAsymmetric {
                bits: 4,
                num_bins: 25,
                ratio: 1.0,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let q = scheme.quantize_row(black_box(rows.row(i % rows.num_rows())));
                i += 1;
                black_box(q)
            })
        });
    }
    group.finish();
}

fn adaptive_bins(c: &mut Criterion) {
    let (_, model) = trained_model(1, 100, 16);
    let rows = sampled_rows(&model, 64);
    let mut group = c.benchmark_group("adaptive_bins");
    for bins in [5u32, 25, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(bins), &bins, |b, &bins| {
            let scheme = QuantScheme::AdaptiveAsymmetric {
                bits: 2,
                num_bins: bins,
                ratio: 1.0,
            };
            let mut i = 0usize;
            b.iter(|| {
                let q = scheme.quantize_row(black_box(rows.row(i % rows.num_rows())));
                i += 1;
                black_box(q)
            })
        });
    }
    group.finish();
}

fn adaptive_ratio(c: &mut Criterion) {
    let (_, model) = trained_model(1, 100, 16);
    let rows = sampled_rows(&model, 64);
    let mut group = c.benchmark_group("adaptive_ratio");
    for pct in [10u32, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(pct), &pct, |b, &pct| {
            let scheme = QuantScheme::AdaptiveAsymmetric {
                bits: 4,
                num_bins: 45,
                ratio: pct as f64 / 100.0,
            };
            let mut i = 0usize;
            b.iter(|| {
                let q = scheme.quantize_row(black_box(rows.row(i % rows.num_rows())));
                i += 1;
                black_box(q)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = schemes, adaptive_bins, adaptive_ratio
}
criterion_main!(benches);
