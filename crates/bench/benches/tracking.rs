//! Tracking micro-benchmarks: the §5.1.1 claim that marking is cheap enough
//! to hide inside the AlltoAll window.

use cnr_tracking::{AtomicBitVec, ModificationTracker};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn mark_throughput(c: &mut Criterion) {
    let tracker = ModificationTracker::new(&[1_000_000, 500_000]);
    let mut group = c.benchmark_group("tracker");
    group.throughput(Throughput::Elements(1));
    group.bench_function("mark", |b| {
        let mut i = 0usize;
        b.iter(|| {
            tracker.mark(i % 2, (i * 7919) % 500_000);
            i += 1;
        })
    });
    group.finish();
}

fn snapshot_and_reset(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracker_snapshot");
    for rows in [100_000usize, 1_000_000] {
        let tracker = ModificationTracker::new(&[rows]);
        for i in (0..rows).step_by(3) {
            tracker.mark(0, i);
        }
        group.bench_function(format!("snapshot_{rows}"), |b| {
            b.iter(|| black_box(tracker.snapshot()))
        });
    }
    group.finish();
}

fn bitvec_iteration(c: &mut Criterion) {
    let bv = AtomicBitVec::new(1_000_000);
    for i in (0..1_000_000).step_by(4) {
        bv.set(i);
    }
    let snap = bv.snapshot();
    c.bench_function("iter_ones_250k_of_1m", |b| {
        b.iter(|| black_box(snap.iter_ones().count()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = mark_throughput, snapshot_and_reset, bitvec_iteration
}
criterion_main!(benches);
