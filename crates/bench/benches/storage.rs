//! Storage backend micro-benchmarks.

use bytes::Bytes;
use cnr_cluster::SimClock;
use cnr_storage::{InMemoryStore, ObjectStore, RemoteConfig, SimulatedRemoteStore};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn memory_put_get(c: &mut Criterion) {
    let store = InMemoryStore::new();
    let payload = Bytes::from(vec![0u8; 64 * 1024]);
    let mut group = c.benchmark_group("memory_store");
    group.throughput(Throughput::Bytes(64 * 1024));
    group.bench_function("put_64k", |b| {
        let mut i = 0u64;
        b.iter(|| {
            store
                .put(&format!("bench/{}", i % 128), payload.clone())
                .unwrap();
            i += 1;
        })
    });
    store.put("bench/get", payload).unwrap();
    group.bench_function("get_64k", |b| {
        b.iter(|| black_box(store.get("bench/get").unwrap()))
    });
    group.finish();
}

fn remote_put(c: &mut Criterion) {
    // Wall-clock cost of the *simulation bookkeeping* (transfers are
    // simulated-time, not wall-time).
    let store = SimulatedRemoteStore::new(RemoteConfig::default(), SimClock::new());
    let payload = Bytes::from(vec![0u8; 64 * 1024]);
    c.bench_function("remote_put_64k_bookkeeping", |b| {
        let mut i = 0u64;
        b.iter(|| {
            store
                .put(&format!("bench/{}", i % 128), payload.clone())
                .unwrap();
            i += 1;
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = memory_put_get, remote_put
}
criterion_main!(benches);
