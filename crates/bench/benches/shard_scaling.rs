//! Shard-scaling bench: the same snapshot written over 1/2/4/8 writer
//! hosts.
//!
//! Two quantities matter and the bench reports both:
//!
//! * **wall time** (criterion's measurement) — the bookkeeping cost of the
//!   sharded pipeline; and
//! * **simulated durability time** (printed once per host count) — the
//!   §4.3 write latency, which drops near-linearly with hosts because each
//!   host streams its shard over its own uplink.

use cnr_cluster::SimClock;
use cnr_core::config::CheckpointConfig;
use cnr_core::manifest::{CheckpointId, CheckpointKind};
use cnr_core::policy::{Decision, TrackerAction};
use cnr_core::snapshot::SnapshotTaker;
use cnr_core::write::CheckpointWriter;
use cnr_core::TrainingSnapshot;
use cnr_model::{DlrmModel, ModelConfig, ShardPlan};
use cnr_quant::QuantScheme;
use cnr_reader::ReaderState;
use cnr_storage::{RemoteConfig, SimulatedRemoteStore};
use cnr_trainer::{Trainer, TrainerConfig};
use cnr_workload::{DatasetSpec, SyntheticDataset};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn snapshot() -> TrainingSnapshot {
    let spec = DatasetSpec::tiny(4242);
    let ds = SyntheticDataset::new(spec.clone());
    let cfg = ModelConfig::for_dataset(&spec, 16);
    let model = DlrmModel::new(cfg.clone());
    let mut trainer = Trainer::new(model, SimClock::new(), TrainerConfig::default());
    for i in 0..3 {
        trainer.train_one(&ds.batch(i));
    }
    SnapshotTaker::new(ShardPlan::balanced(&cfg, 1, 2)).take(
        &mut trainer,
        ReaderState::at(3),
        Decision {
            kind: CheckpointKind::Full,
            tracker: TrackerAction::SnapshotReset,
        },
        &CheckpointConfig::default(),
    )
}

fn write_once(snap: &TrainingSnapshot, hosts: usize) -> Duration {
    let store = SimulatedRemoteStore::new(
        RemoteConfig {
            bandwidth_bytes_per_sec: 4.0 * 1024.0 * 1024.0,
            base_latency: Duration::from_micros(200),
            replication: 1,
            channels: hosts as u32,
        },
        SimClock::new(),
    );
    let writer = CheckpointWriter::new(&store, "bench");
    let cfg = CheckpointConfig {
        chunk_rows: 128,
        writer_hosts: hosts,
        ..CheckpointConfig::default()
    };
    writer
        .write(snap, CheckpointId(0), None, QuantScheme::Fp32, &cfg)
        .expect("write")
        .completed_at
}

fn shard_scaling(c: &mut Criterion) {
    let snap = snapshot();
    let mut group = c.benchmark_group("shard_write");
    group.sample_size(10);
    for hosts in [1usize, 2, 4, 8] {
        let durable = write_once(&snap, hosts);
        println!("# shard_write/{hosts}: simulated durability {durable:?}");
        group.bench_with_input(BenchmarkId::from_parameter(hosts), &hosts, |b, &hosts| {
            b.iter(|| write_once(&snap, hosts));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = shard_scaling
}
criterion_main!(benches);
