//! Snapshot and writer-pipeline benchmarks: the §4.2 stall path and the
//! §4.4 background pipeline.

use cnr_bench::workloads::trained_model;
use cnr_core::config::CheckpointConfig;
use cnr_core::manifest::{CheckpointId, CheckpointKind};
use cnr_core::policy::{Decision, TrackerAction};
use cnr_core::snapshot::SnapshotTaker;
use cnr_core::write::CheckpointWriter;
use cnr_cluster::SimClock;
use cnr_model::{ModelState, ShardPlan};
use cnr_quant::QuantScheme;
use cnr_reader::ReaderState;
use cnr_storage::InMemoryStore;
use cnr_trainer::{Trainer, TrainerConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn state_extract(c: &mut Criterion) {
    let (_, model) = trained_model(1, 50, 16);
    c.bench_function("model_state_extract", |b| {
        b.iter(|| black_box(ModelState::extract(&model)))
    });
}

fn writer_pipeline(c: &mut Criterion) {
    let (ds, model) = trained_model(1, 50, 16);
    let model_cfg = model.config().clone();
    let plan = ShardPlan::balanced(&model_cfg, 1, 4);
    let mut trainer = Trainer::new(model, SimClock::new(), TrainerConfig::default());
    for i in 50..60 {
        trainer.train_one(&ds.batch(i));
    }
    let taker = SnapshotTaker::new(plan);
    let cfg = CheckpointConfig::default();
    let snapshot = taker.take(
        &mut trainer,
        ReaderState::at(60),
        Decision {
            kind: CheckpointKind::Full,
            tracker: TrackerAction::SnapshotKeep,
        },
        &cfg,
    );

    let mut group = c.benchmark_group("writer_full_ckpt");
    group.sample_size(10);
    for workers in [1usize, 4] {
        group.bench_function(format!("workers_{workers}"), |b| {
            let cfg = CheckpointConfig {
                quantize_workers: workers,
                ..CheckpointConfig::default()
            };
            b.iter(|| {
                let store = InMemoryStore::new();
                let writer = CheckpointWriter::new(&store, "bench");
                black_box(
                    writer
                        .write(
                            &snapshot,
                            CheckpointId(0),
                            None,
                            QuantScheme::Asymmetric { bits: 4 },
                            &cfg,
                        )
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = state_extract, writer_pipeline
}
criterion_main!(benches);
