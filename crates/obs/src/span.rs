//! Spans: named, parented time intervals.
//!
//! A [`Span`] is one phase of work — a snapshot stall, a shard fetch, a WAL
//! replay — with an explicit parent edge. The engine's phase durations are
//! mostly known *after* the fact (the simulator computes a phase's length
//! and then advances the clock past it), so the primary recording API is
//! retrospective: build a [`Span`] with explicit `start`/`end` stamps and
//! [`Obs::record`] it. [`SpanGuard`] covers the live-measurement case
//! (wall-clock CPU phases) with the usual RAII shape.
//!
//! # Tree invariants
//!
//! Recorded spans form a forest. Producers in this workspace maintain, and
//! [`validate_tree`] checks:
//!
//! 1. ids are unique and every `parent` id was recorded earlier;
//! 2. a child's `[start, end]` lies within its parent's;
//! 3. per parent, the summed duration of [`SpanKind::Sync`] children never
//!    exceeds the parent's duration (sync children are laid out
//!    sequentially; [`SpanKind::Concurrent`] children overlap each other —
//!    per-host fetches, background uploads — and are exempt from the sum
//!    rule, though each must still fit inside the parent).

use crate::clock::{Clock, WallClock};
use crate::metrics::MetricsRegistry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Identifier of a recorded span, unique within one [`Obs`] handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// How a span relates to its siblings under the same parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpanKind {
    /// Sequential phase: sync siblings partition the parent's duration, so
    /// their summed length must not exceed it.
    #[default]
    Sync,
    /// Overlapping work (per-host fetches, background upload drains, lazy
    /// fault-in): bounded by the parent but exempt from the sibling sum
    /// rule.
    Concurrent,
}

/// One named, parented time interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Unique id, assigned by [`Obs::record`] (zero until recorded).
    pub id: SpanId,
    /// Parent edge; `None` for roots.
    pub parent: Option<SpanId>,
    /// Taxonomy name, e.g. `"restore.fetch"` (see README's span table).
    pub name: &'static str,
    /// Start stamp, in the recording clock's epoch.
    pub start: Duration,
    /// End stamp; `end >= start`.
    pub end: Duration,
    /// Sibling relation; see [`SpanKind`].
    pub kind: SpanKind,
    /// Display lane (Chrome trace `tid`); hosts map to lanes.
    pub track: u64,
    /// Free-form key/value annotations.
    pub attrs: Vec<(&'static str, String)>,
}

impl Span {
    /// A root sync span on track 0 with no attrs; chain the `with_*`
    /// builders and pass to [`Obs::record`].
    pub fn new(name: &'static str, start: Duration, end: Duration) -> Self {
        debug_assert!(end >= start, "span {name} ends before it starts");
        Self {
            id: SpanId(0),
            parent: None,
            name,
            start,
            end,
            kind: SpanKind::Sync,
            track: 0,
            attrs: Vec::new(),
        }
    }

    /// Sets the parent edge.
    pub fn with_parent(mut self, parent: SpanId) -> Self {
        self.parent = Some(parent);
        self
    }

    /// Sets the sibling relation.
    pub fn with_kind(mut self, kind: SpanKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the display lane.
    pub fn with_track(mut self, track: u64) -> Self {
        self.track = track;
        self
    }

    /// Appends one annotation.
    pub fn with_attr(mut self, key: &'static str, value: impl Into<String>) -> Self {
        self.attrs.push((key, value.into()));
        self
    }

    /// Span length.
    pub fn duration(&self) -> Duration {
        self.end.saturating_sub(self.start)
    }
}

/// Subscriber for completed spans.
///
/// # Contract
///
/// * [`ObsSink::on_span`] is called **exactly once per span**, at the moment
///   the span is recorded (guard drop or [`Obs::record`]), synchronously on
///   the recording thread. Keep it cheap; it sits on checkpoint/restore hot
///   paths.
/// * Delivery is in **completion order**, not start order: a parent that
///   outlives its children is delivered after them. However, spans recorded
///   retrospectively (the engine's usual mode) are delivered parents-first,
///   and every `parent` id referenced by a delivered span has itself been
///   delivered or assigned before the child arrives.
/// * The span buffer lock is **not** held during delivery, so a sink may
///   call back into the same [`Obs`] handle (e.g. to bump a metric), but
///   must not assume it sees its own re-entrant span before returning.
/// * Sinks are shared across threads (`Send + Sync`) and must tolerate
///   concurrent calls when producers record from scoped worker threads.
pub trait ObsSink: Send + Sync {
    /// Observes one completed span.
    fn on_span(&self, span: &Span);
}

struct ObsInner {
    clock: Arc<dyn Clock>,
    next_id: AtomicU64,
    spans: Mutex<Vec<Span>>,
    sinks: Mutex<Vec<Arc<dyn ObsSink>>>,
    registry: MetricsRegistry,
}

/// Cheaply clonable observability handle: a clock, a span buffer, a metrics
/// registry, and zero or more external [`ObsSink`]s.
///
/// All clones share state; the engine owns one and threads clones through
/// its subsystems.
#[derive(Clone)]
pub struct Obs {
    inner: Arc<ObsInner>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("spans", &self.inner.spans.lock().expect("span buffer poisoned").len())
            .finish_non_exhaustive()
    }
}

impl Obs {
    /// An observability handle stamping time from `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self {
            inner: Arc::new(ObsInner {
                clock,
                next_id: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
                sinks: Mutex::new(Vec::new()),
                registry: MetricsRegistry::new(),
            }),
        }
    }

    /// A handle on wall-clock time (epoch = now); convenient for tests and
    /// CPU-phase measurement outside the simulator.
    pub fn wall() -> Self {
        Self::new(Arc::new(WallClock::new()))
    }

    /// Current time on the recording clock.
    pub fn now(&self) -> Duration {
        self.inner.clock.now()
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    /// Subscribes an external sink; it sees only spans recorded after this
    /// call.
    pub fn add_sink(&self, sink: Arc<dyn ObsSink>) {
        self.inner.sinks.lock().expect("sink list poisoned").push(sink);
    }

    /// Records a completed span, assigning its id, and notifies sinks.
    pub fn record(&self, mut span: Span) -> SpanId {
        let id = SpanId(self.inner.next_id.fetch_add(1, Ordering::Relaxed));
        span.id = id;
        {
            let mut spans = self.inner.spans.lock().expect("span buffer poisoned");
            spans.push(span.clone());
        }
        let sinks = self.inner.sinks.lock().expect("sink list poisoned").clone();
        for sink in sinks {
            sink.on_span(&span);
        }
        id
    }

    /// Starts a live span at `now()`; recorded when the guard finishes or
    /// drops.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard {
            obs: self.clone(),
            span: Span::new(name, self.now(), self.now()),
            done: false,
        }
    }

    /// Starts a live child span at `now()`.
    pub fn child_span(&self, name: &'static str, parent: SpanId) -> SpanGuard {
        let mut guard = self.span(name);
        guard.span.parent = Some(parent);
        guard
    }

    /// Snapshot of every span recorded so far, in completion order.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.spans.lock().expect("span buffer poisoned").clone()
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.inner.spans.lock().expect("span buffer poisoned").len()
    }
}

/// RAII guard for a live span; see [`Obs::span`].
///
/// Finishing (explicitly or on drop) stamps `end = now()` and records the
/// span.
#[must_use = "a SpanGuard records its span when finished or dropped"]
pub struct SpanGuard {
    obs: Obs,
    span: Span,
    done: bool,
}

impl SpanGuard {
    /// Appends an annotation.
    pub fn attr(mut self, key: &'static str, value: impl Into<String>) -> Self {
        self.span.attrs.push((key, value.into()));
        self
    }

    /// Marks the span concurrent with its siblings.
    pub fn concurrent(mut self) -> Self {
        self.span.kind = SpanKind::Concurrent;
        self
    }

    /// Sets the display lane.
    pub fn track(mut self, track: u64) -> Self {
        self.span.track = track;
        self
    }

    /// Stamps the end and records the span, returning its id.
    pub fn finish(mut self) -> SpanId {
        self.done = true;
        self.span.end = self.obs.now().max(self.span.start);
        self.obs.record(std::mem::replace(
            &mut self.span,
            Span::new("", Duration::ZERO, Duration::ZERO),
        ))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.done {
            self.span.end = self.obs.now().max(self.span.start);
            let span = std::mem::replace(&mut self.span, Span::new("", Duration::ZERO, Duration::ZERO));
            self.obs.record(span);
        }
    }
}

/// Checks the tree invariants over a recorded span set (see module docs);
/// returns a description of the first violation.
pub fn validate_tree(spans: &[Span]) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut by_id: BTreeMap<SpanId, &Span> = BTreeMap::new();
    for s in spans {
        if s.id.0 == 0 {
            return Err(format!("span {:?} was never recorded (id 0)", s.name));
        }
        if s.end < s.start {
            return Err(format!("span {} ends before it starts", s.name));
        }
        if by_id.insert(s.id, s).is_some() {
            return Err(format!("duplicate span id {:?}", s.id));
        }
    }
    let mut sync_sums: BTreeMap<SpanId, Duration> = BTreeMap::new();
    for s in spans {
        if let Some(pid) = s.parent {
            let parent = by_id
                .get(&pid)
                .ok_or_else(|| format!("span {} references unknown parent {:?}", s.name, pid))?;
            if pid >= s.id {
                return Err(format!("span {} recorded before its parent {}", s.name, parent.name));
            }
            if s.start < parent.start || s.end > parent.end {
                return Err(format!(
                    "child {} [{:?}, {:?}] escapes parent {} [{:?}, {:?}]",
                    s.name, s.start, s.end, parent.name, parent.start, parent.end
                ));
            }
            if s.kind == SpanKind::Sync {
                *sync_sums.entry(pid).or_default() += s.duration();
            }
        }
    }
    for (pid, sum) in sync_sums {
        let parent = by_id[&pid];
        if sum > parent.duration() {
            return Err(format!(
                "sync children of {} sum to {:?}, exceeding parent duration {:?}",
                parent.name,
                sum,
                parent.duration()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn manual_obs() -> (Obs, ManualClock) {
        let clock = ManualClock::new();
        (Obs::new(Arc::new(clock.clone())), clock)
    }

    #[test]
    fn record_assigns_increasing_ids_and_keeps_order() {
        let (obs, _) = manual_obs();
        let a = obs.record(Span::new("a", Duration::ZERO, Duration::from_secs(1)));
        let b = obs.record(Span::new("b", Duration::ZERO, Duration::from_secs(1)));
        assert!(b > a);
        let spans = obs.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[0].id, a);
    }

    #[test]
    fn guard_measures_clock_time() {
        let (obs, clock) = manual_obs();
        let g = obs.span("work").attr("k", "v");
        clock.advance(Duration::from_millis(7));
        g.finish();
        let spans = obs.spans();
        assert_eq!(spans[0].duration(), Duration::from_millis(7));
        assert_eq!(spans[0].attrs, vec![("k", "v".to_string())]);
    }

    #[test]
    fn guard_records_on_drop() {
        let (obs, clock) = manual_obs();
        {
            let _g = obs.span("dropped");
            clock.advance(Duration::from_millis(2));
        }
        assert_eq!(obs.spans()[0].duration(), Duration::from_millis(2));
    }

    #[test]
    fn sinks_see_spans_in_completion_order() {
        struct Rec(Mutex<Vec<&'static str>>);
        impl ObsSink for Rec {
            fn on_span(&self, span: &Span) {
                self.0.lock().unwrap().push(span.name);
            }
        }
        let (obs, clock) = manual_obs();
        let rec = Arc::new(Rec(Mutex::new(Vec::new())));
        obs.add_sink(rec.clone());
        let outer = obs.span("outer");
        clock.advance(Duration::from_millis(1));
        obs.child_span("inner", SpanId(99)).finish();
        outer.finish();
        assert_eq!(*rec.0.lock().unwrap(), vec!["inner", "outer"]);
    }

    #[test]
    fn validate_accepts_sequential_children() {
        let (obs, _) = manual_obs();
        let s = |a: u64, b: u64| (Duration::from_millis(a), Duration::from_millis(b));
        let (rs, re) = s(0, 10);
        let root = obs.record(Span::new("root", rs, re));
        let (a, b) = s(0, 4);
        obs.record(Span::new("x", a, b).with_parent(root));
        let (a, b) = s(4, 10);
        obs.record(Span::new("y", a, b).with_parent(root));
        validate_tree(&obs.spans()).unwrap();
    }

    #[test]
    fn validate_rejects_escaping_child() {
        let (obs, _) = manual_obs();
        let root = obs.record(Span::new("root", Duration::ZERO, Duration::from_millis(5)));
        obs.record(
            Span::new("late", Duration::from_millis(4), Duration::from_millis(9)).with_parent(root),
        );
        assert!(validate_tree(&obs.spans()).unwrap_err().contains("escapes"));
    }

    #[test]
    fn validate_rejects_oversubscribed_sync_children() {
        let (obs, _) = manual_obs();
        let root = obs.record(Span::new("root", Duration::ZERO, Duration::from_millis(5)));
        for _ in 0..2 {
            obs.record(
                Span::new("c", Duration::ZERO, Duration::from_millis(4)).with_parent(root),
            );
        }
        assert!(validate_tree(&obs.spans()).unwrap_err().contains("sync children"));
    }

    #[test]
    fn validate_allows_overlapping_concurrent_children() {
        let (obs, _) = manual_obs();
        let root = obs.record(Span::new("root", Duration::ZERO, Duration::from_millis(5)));
        for _ in 0..3 {
            obs.record(
                Span::new("host", Duration::ZERO, Duration::from_millis(5))
                    .with_parent(root)
                    .with_kind(SpanKind::Concurrent),
            );
        }
        validate_tree(&obs.spans()).unwrap();
    }

    #[test]
    fn validate_rejects_unknown_parent() {
        let (obs, _) = manual_obs();
        obs.record(Span::new("orphan", Duration::ZERO, Duration::ZERO).with_parent(SpanId(42)));
        assert!(validate_tree(&obs.spans()).unwrap_err().contains("unknown parent"));
    }
}
