//! Time sources for span timestamps.
//!
//! Everything in this crate stamps time as a [`Duration`] since an arbitrary
//! per-clock epoch. That is exactly the shape of the workspace's simulated
//! clock (`cnr_cluster::SimClock::now`), and wall clocks are adapted to it by
//! measuring from a fixed origin [`Instant`]. Spans recorded against
//! different clocks must not be mixed in one trace; the engine always uses
//! its simulated clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source with an arbitrary epoch.
///
/// Implementations must be monotone non-decreasing: two calls `a` then `b`
/// on the same clock observe `a <= b`. The trait is object-safe so an
/// [`crate::Obs`] handle can hold `Arc<dyn Clock>`.
pub trait Clock: Send + Sync {
    /// Time elapsed since this clock's epoch.
    fn now(&self) -> Duration;
}

/// Wall-clock time measured from the moment the clock was created.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is "now".
    pub fn new() -> Self {
        Self { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A hand-advanced clock for tests.
///
/// Cloning is cheap; clones share the same time, mirroring
/// `cnr_cluster::SimClock` (which cannot be used here without a dependency
/// cycle).
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    micros: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        let add = d.as_micros().min(u128::from(u64::MAX)) as u64;
        self.micros.fetch_add(add, Ordering::AcqRel);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_micros(self.micros.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let c = ManualClock::new();
        let c2 = c.clone();
        c.advance(Duration::from_millis(3));
        assert_eq!(c2.now(), Duration::from_millis(3));
    }

    #[test]
    fn clock_is_object_safe() {
        let c: Arc<dyn Clock> = Arc::new(ManualClock::new());
        assert_eq!(c.now(), Duration::ZERO);
    }
}
