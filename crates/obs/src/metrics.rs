//! Counters, gauges, and fixed-bucket histograms.
//!
//! The registry is the single accumulation point for run-level numbers:
//! `cnr_core`'s `RunStats`/`WalRunStats` aggregates are *derived from* these
//! metrics (and test-asserted equal to them) instead of being
//! hand-accumulated in parallel at every call site.
//!
//! # Exactness
//!
//! Histograms keep their running `sum` as an `f64` of the observed values.
//! Durations are observed in **whole nanoseconds**; integer-valued sums stay
//! exact under f64 addition while below 2^53 (≈104 days of simulated time),
//! which is what lets tests assert strict equality between a histogram sum
//! and a `Duration` total.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Bucket upper bounds (nanoseconds) for duration histograms: a 1–2–5
/// series from 1µs to 1h, plus the implicit overflow bucket.
pub const DURATION_BOUNDS_NS: &[f64] = &[
    1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8, 2e8, 5e8,
    1e9, 2e9, 5e9, 1e10, 2e10, 5e10, 1e11, 2e11, 5e11, 1e12, 3.6e12,
];

/// Bucket upper bounds for small-count histograms (retries, fault-ins).
pub const COUNT_BOUNDS: &[f64] = &[0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0, 100.0, 1000.0];

/// Bucket upper bounds for ratio histograms (cache hit rate, fractions).
pub const RATE_BOUNDS: &[f64] = &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Bucket upper bounds for byte-size histograms: 1KiB..1TiB, powers of 4.
pub const BYTES_BOUNDS: &[f64] = &[
    1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0, 16777216.0, 67108864.0,
    268435456.0, 1073741824.0, 4294967296.0, 17179869184.0, 68719476736.0, 274877906944.0,
    1099511627776.0,
];

#[derive(Debug, Clone)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

#[derive(Debug, Clone)]
struct Histogram {
    bounds: &'static [f64],
    /// One count per bound, plus a trailing overflow bucket.
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new(bounds: &'static [f64]) -> Self {
        Self {
            bounds,
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, v: f64) {
        let idx = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds; the overflow bucket is implicit.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Exact running sum of observed values (see module docs).
    pub sum: f64,
    /// Smallest observation, or +inf when empty.
    pub min: f64,
    /// Largest observation, or -inf when empty.
    pub max: f64,
}

impl HistogramSnapshot {
    /// Arithmetic mean, or `None` when no observations were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Quantile estimate by linear interpolation within the landing bucket;
    /// `None` when empty. `q` is clamped to `[0, 1]`; the overflow bucket
    /// reports the observed max.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let prev = cum;
            cum += n;
            if (cum as f64) >= rank {
                if i >= self.bounds.len() {
                    return Some(self.max);
                }
                let hi = self.bounds[i];
                let lo = if i == 0 { self.min.min(hi) } else { self.bounds[i - 1] };
                let frac = (rank - prev as f64) / n as f64;
                return Some(lo + (hi - lo) * frac.clamp(0.0, 1.0));
            }
        }
        Some(self.max)
    }

    /// The histogram sum reinterpreted as a duration (valid for histograms
    /// fed by [`MetricsRegistry::observe_duration`]).
    pub fn sum_duration(&self) -> Duration {
        Duration::from_nanos(self.sum.max(0.0).min(u64::MAX as f64) as u64)
    }
}

/// Point-in-time value of one metric, as returned by
/// [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone event count.
    Counter(u64),
    /// Last-write-wins level.
    Gauge(f64),
    /// Fixed-bucket distribution.
    Histogram(HistogramSnapshot),
}

/// Named counters, gauges, and histograms behind one lock.
///
/// Names are flat strings (`"cnr_wal_appends_total"`); a name is bound to
/// its metric type (and, for histograms, its bucket bounds) on first use,
/// and later calls with a conflicting type panic — that is a programming
/// error, not a runtime condition.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_metric<R>(&self, name: &str, init: impl FnOnce() -> Metric, f: impl FnOnce(&mut Metric) -> R) -> R {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        if !metrics.contains_key(name) {
            metrics.insert(name.to_string(), init());
        }
        f(metrics.get_mut(name).expect("just inserted"))
    }

    /// Adds `v` to the named counter (created at zero on first use).
    pub fn counter_add(&self, name: &str, v: u64) {
        self.with_metric(name, || Metric::Counter(0), |m| match m {
            Metric::Counter(c) => *c = c.saturating_add(v),
            _ => panic!("metric {name} is not a counter"),
        })
    }

    /// Current value of the named counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.lock().expect("metrics registry poisoned").get(name) {
            Some(Metric::Counter(c)) => *c,
            Some(_) => panic!("metric {name} is not a counter"),
            None => 0,
        }
    }

    /// Sets the named gauge.
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.with_metric(name, || Metric::Gauge(0.0), |m| match m {
            Metric::Gauge(g) => *g = v,
            _ => panic!("metric {name} is not a gauge"),
        })
    }

    /// Current value of the named gauge, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.lock().expect("metrics registry poisoned").get(name) {
            Some(Metric::Gauge(g)) => Some(*g),
            Some(_) => panic!("metric {name} is not a gauge"),
            None => None,
        }
    }

    /// Records `v` into the named histogram, binding `bounds` on first use.
    pub fn observe(&self, name: &str, v: f64, bounds: &'static [f64]) {
        self.with_metric(name, || Metric::Histogram(Histogram::new(bounds)), |m| match m {
            Metric::Histogram(h) => h.observe(v),
            _ => panic!("metric {name} is not a histogram"),
        })
    }

    /// Records a duration (in whole nanoseconds) into the named histogram
    /// with [`DURATION_BOUNDS_NS`].
    pub fn observe_duration(&self, name: &str, d: Duration) {
        self.observe(name, d.as_nanos().min(u128::from(u64::MAX)) as f64, DURATION_BOUNDS_NS);
    }

    /// Snapshot of the named histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        match self.metrics.lock().expect("metrics registry poisoned").get(name) {
            Some(Metric::Histogram(h)) => Some(HistogramSnapshot {
                bounds: h.bounds.to_vec(),
                buckets: h.buckets.clone(),
                count: h.count,
                sum: h.sum,
                min: h.min,
                max: h.max,
            }),
            Some(_) => panic!("metric {name} is not a histogram"),
            None => None,
        }
    }

    /// Sum of a duration histogram as a [`Duration`] (zero if absent).
    pub fn duration_sum(&self, name: &str) -> Duration {
        self.histogram(name).map(|h| h.sum_duration()).unwrap_or(Duration::ZERO)
    }

    /// Point-in-time copy of every metric, name-sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            metrics: metrics
                .iter()
                .map(|(name, m)| {
                    let v = match m {
                        Metric::Counter(c) => MetricValue::Counter(*c),
                        Metric::Gauge(g) => MetricValue::Gauge(*g),
                        Metric::Histogram(h) => MetricValue::Histogram(HistogramSnapshot {
                            bounds: h.bounds.to_vec(),
                            buckets: h.buckets.clone(),
                            count: h.count,
                            sum: h.sum,
                            min: h.min,
                            max: h.max,
                        }),
                    };
                    (name.clone(), v)
                })
                .collect(),
        }
    }
}

/// Point-in-time copy of a whole registry (name → value, name-sorted).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// All metrics by name.
    pub metrics: BTreeMap<String, MetricValue>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let r = MetricsRegistry::new();
        assert_eq!(r.counter("x"), 0);
        r.counter_add("x", 2);
        r.counter_add("x", 3);
        assert_eq!(r.counter("x"), 5);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let r = MetricsRegistry::new();
        assert_eq!(r.gauge("g"), None);
        r.gauge_set("g", 1.5);
        r.gauge_set("g", 0.25);
        assert_eq!(r.gauge("g"), Some(0.25));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_conflicts_panic() {
        let r = MetricsRegistry::new();
        r.gauge_set("m", 1.0);
        r.counter_add("m", 1);
    }

    #[test]
    fn duration_sums_are_exact() {
        let r = MetricsRegistry::new();
        let durations = [
            Duration::from_nanos(123_456_789),
            Duration::from_micros(7),
            Duration::from_secs(3600),
            Duration::from_nanos(1),
        ];
        let mut total = Duration::ZERO;
        for d in durations {
            r.observe_duration("lat", d);
            total += d;
        }
        assert_eq!(r.duration_sum("lat"), total);
        assert_eq!(r.histogram("lat").unwrap().count, 4);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let r = MetricsRegistry::new();
        for ms in 1..=100u64 {
            r.observe_duration("lat", Duration::from_millis(ms));
        }
        let h = r.histogram("lat").unwrap();
        let (p50, p95, p99) = (
            h.quantile(0.50).unwrap(),
            h.quantile(0.95).unwrap(),
            h.quantile(0.99).unwrap(),
        );
        assert!(p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
        assert!(p50 >= h.min && p99 <= h.max.max(*h.bounds.last().unwrap()));
        // p50 of 1..=100ms lands in the right decade.
        assert!((2e7..2e8).contains(&p50), "p50={p50}ns");
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = HistogramSnapshot {
            bounds: DURATION_BOUNDS_NS.to_vec(),
            buckets: vec![0; DURATION_BOUNDS_NS.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        };
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn overflow_bucket_reports_observed_max() {
        let r = MetricsRegistry::new();
        r.observe("big", 1e15, DURATION_BOUNDS_NS);
        let h = r.histogram("big").unwrap();
        assert_eq!(*h.buckets.last().unwrap(), 1);
        assert_eq!(h.quantile(0.99), Some(1e15));
    }

    #[test]
    fn custom_bounds_bind_on_first_use() {
        let r = MetricsRegistry::new();
        r.observe("hit_rate", 0.73, RATE_BOUNDS);
        let h = r.histogram("hit_rate").unwrap();
        assert_eq!(h.bounds, RATE_BOUNDS.to_vec());
        assert_eq!(h.buckets[7], 1); // 0.73 <= 0.8
    }

    #[test]
    fn snapshot_is_name_sorted_and_complete() {
        let r = MetricsRegistry::new();
        r.counter_add("b", 1);
        r.gauge_set("a", 2.0);
        r.observe("c", 3.0, COUNT_BOUNDS);
        let snap = r.snapshot();
        let names: Vec<_> = snap.metrics.keys().cloned().collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(snap.metrics["b"], MetricValue::Counter(1));
    }
}
