//! Zero-dependency observability for the Check-N-Run workspace.
//!
//! Check-N-Run's evaluation is built on *decomposed* timing: snapshot stall
//! vs. quantize CPU vs. upload drain on the write side (§4 of the paper),
//! and the fetch/decode/merge downtime model on the read side (§2, §5).
//! This crate is the substrate those decompositions are recorded on:
//!
//! * [`span`] — a [`Span`]/[`SpanGuard`] tracing API with explicit parent
//!   edges. Spans stamp timestamps through the [`Clock`] trait, so the same
//!   code paths produce coherent trees whether time is wall-clock
//!   ([`WallClock`]) or the engine's simulated clock (`cnr_cluster::SimClock`
//!   implements [`Clock`]).
//! * [`metrics`] — a [`MetricsRegistry`] of counters, gauges, and
//!   fixed-bucket histograms (p50/p95/p99). Run-level statistics in
//!   `cnr_core` (`RunStats`, `WalRunStats`, …) are *derived from* this
//!   registry rather than hand-accumulated at call sites.
//! * [`export`] — a Chrome `trace_event`-compatible JSONL trace writer and a
//!   Prometheus-style text exposition snapshot, plus a structural validator
//!   for the JSONL timeline.
//! * [`json`] — the hand-rolled JSON escaping/formatting helpers shared with
//!   `cnr_bench::trajectory` (this workspace has no serde_json).
//!
//! The crate is `std`-only by design: it sits *below* `cnr_cluster` in the
//! dependency DAG so every other crate can thread an [`Obs`] handle through
//! without cycles, and so the vendored-stub policy never applies to it.
//!
//! # The `ObsSink` contract
//!
//! External consumers subscribe through [`ObsSink`]; see its rustdoc for the
//! exact delivery guarantees (completion-ordered, at-most-once per span,
//! called on the recording thread).

pub mod clock;
pub mod export;
pub mod json;
pub mod metrics;
pub mod names;
pub mod span;

pub use clock::{Clock, ManualClock, WallClock};
pub use metrics::{HistogramSnapshot, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use span::{Obs, ObsSink, Span, SpanGuard, SpanId, SpanKind};
