//! Canonical span and metric names for the Check-N-Run workspace.
//!
//! `cnr_storage` feeds the registry (WAL, scrub, cache tier) and `cnr_core`
//! derives `RunStats`/`WalRunStats` back out of it; both sides must agree on
//! names, and this module is the single place they are spelled. The README's
//! "Observability" section documents the taxonomy; keep the three in sync.
//!
//! Histogram metrics suffixed `_ns` observe whole nanoseconds (see
//! [`crate::metrics`] for why sums stay exact); counters follow the
//! Prometheus `_total` convention.

// ---- Span names: checkpoint lifecycle -------------------------------------

/// Root span of one checkpoint interval (snapshot → … → GC).
pub const SPAN_CHECKPOINT: &str = "checkpoint";
/// Training stall while the consistent snapshot is taken.
pub const SPAN_CHECKPOINT_SNAPSHOT: &str = "checkpoint.snapshot";
/// CPU time quantizing the snapshot (concurrent: overlaps the previous
/// interval's upload drain, §4.3).
pub const SPAN_CHECKPOINT_QUANTIZE: &str = "checkpoint.quantize";
/// Chunk planning / shard assignment across writer hosts.
pub const SPAN_CHECKPOINT_SHARD: &str = "checkpoint.shard";
/// Decoupled multipart upload drain (concurrent with training).
pub const SPAN_CHECKPOINT_UPLOAD: &str = "checkpoint.upload";
/// Controller registration of the new checkpoint.
pub const SPAN_CHECKPOINT_REGISTER: &str = "checkpoint.register";
/// Orphan/retention garbage collection triggered by registration.
pub const SPAN_CHECKPOINT_GC: &str = "checkpoint.gc";

// ---- Span names: restore pipeline -----------------------------------------

/// Root span of one restore; its duration equals `time_to_resume`.
pub const SPAN_RESTORE: &str = "restore";
/// Manifest-chain walk planning the fetch.
pub const SPAN_RESTORE_PLAN: &str = "restore.plan";
/// Wait for the restored checkpoint's upload drain (PR 7's misattribution
/// bug made this phase first-class).
pub const SPAN_RESTORE_DRAIN_WAIT: &str = "restore.drain_wait";
/// Bandwidth-bound parallel chunk fetch across reader hosts.
pub const SPAN_RESTORE_FETCH: &str = "restore.fetch";
/// One reader host's slice of the fetch (concurrent under
/// [`SPAN_RESTORE_FETCH`]).
pub const SPAN_RESTORE_FETCH_HOST: &str = "restore.fetch.host";
/// CPU decode + de-quantize of fetched chunks.
pub const SPAN_RESTORE_DECODE: &str = "restore.decode";
/// Merging decoded rows into model state.
pub const SPAN_RESTORE_MERGE: &str = "restore.merge";
/// Replaying the delta-WAL tail on top of the checkpoint.
pub const SPAN_RESTORE_WAL_REPLAY: &str = "restore.wal_replay";
/// First trainable batch (zero-length marker, concurrent).
pub const SPAN_RESTORE_FIRST_BATCH: &str = "restore.first_batch";
/// Background cold-tail drain of a lazy restore (root-level: it outlives
/// the restore span).
pub const SPAN_RESTORE_LAZY_DRAIN: &str = "restore.lazy_drain";

// ---- Span names: WAL and scrub --------------------------------------------

/// One WAL sync point: the simulated time charged for making buffered
/// appends durable.
pub const SPAN_WAL_SYNC: &str = "wal.sync";
/// Whole-log truncation at checkpoint registration (zero-length marker).
pub const SPAN_WAL_TRUNCATE: &str = "wal.truncate";
/// One scrub sweep over live objects (zero-length marker in simulated
/// time: scrubbing is background work on spare cycles).
pub const SPAN_SCRUB_SWEEP: &str = "scrub.sweep";

// ---- Metrics: checkpoint --------------------------------------------------

/// Counter: checkpoint intervals completed.
pub const CKPT_INTERVALS: &str = "cnr_checkpoint_intervals_total";
/// Counter: full (non-incremental) checkpoints.
pub const CKPT_FULL: &str = "cnr_checkpoint_full_total";
/// Counter: incremental checkpoints.
pub const CKPT_INCREMENTAL: &str = "cnr_checkpoint_incremental_total";
/// Counter: stored bytes across all checkpoints.
pub const CKPT_STORED_BYTES: &str = "cnr_checkpoint_stored_bytes_total";
/// Histogram (ns): end-to-end write latency per interval.
pub const CKPT_WRITE_LATENCY_NS: &str = "cnr_checkpoint_write_latency_ns";
/// Histogram (ns): training stall per interval.
pub const CKPT_STALL_NS: &str = "cnr_checkpoint_stall_ns";
/// Histogram (ns): quantization CPU per interval.
pub const CKPT_QUANTIZE_CPU_NS: &str = "cnr_checkpoint_quantize_cpu_ns";
/// Histogram (bytes): stored size per interval.
pub const CKPT_STORED_BYTES_HIST: &str = "cnr_checkpoint_stored_bytes";
/// Gauge: live bytes pinned in the store after the latest registration.
pub const CKPT_CAPACITY_BYTES: &str = "cnr_checkpoint_capacity_bytes";
/// Gauge: capacity fraction vs. an unquantized full checkpoint.
pub const CKPT_CAPACITY_FRACTION: &str = "cnr_checkpoint_capacity_fraction";

// ---- Metrics: restore -----------------------------------------------------

/// Counter: restores completed.
pub const RESTORE_RESUMES: &str = "cnr_restore_resumes_total";
/// Counter: lazy-mode restores.
pub const RESTORE_LAZY: &str = "cnr_restore_lazy_total";
/// Counter: logical bytes fetched.
pub const RESTORE_BYTES_FETCHED: &str = "cnr_restore_bytes_fetched_total";
/// Counter: chunks fetched.
pub const RESTORE_CHUNKS_FETCHED: &str = "cnr_restore_chunks_fetched_total";
/// Counter: chunks re-sharded onto survivors after reader death.
pub const RESTORE_RESCHEDULED: &str = "cnr_restore_rescheduled_chunks_total";
/// Counter: envelope verification failures while fetching.
pub const RESTORE_CORRUPTION_DETECTED: &str = "cnr_restore_corruption_detected_total";
/// Counter: corrupt chunks healed by replica re-fetch.
pub const RESTORE_CORRUPTION_REPAIRED: &str = "cnr_restore_corruption_repaired_total";
/// Counter: whole-chunk re-fetches performed to heal corruption.
pub const RESTORE_CORRUPTION_REFETCHES: &str = "cnr_restore_corruption_refetches_total";
/// Counter: iterations recovered from the WAL tail.
pub const RESTORE_WAL_REPLAYED_ITERATIONS: &str = "cnr_restore_wal_replayed_iterations_total";
/// Counter: training iterations lost despite recovery.
pub const RESTORE_LOST_ITERATIONS: &str = "cnr_restore_lost_iterations_total";
/// Counter: on-demand cold-row fault-in fetches after lazy resumes.
pub const RESTORE_FAULT_IN_FETCHES: &str = "cnr_restore_fault_in_fetches_total";
/// Histogram (ns): time-to-resume per restore.
pub const RESTORE_TIME_TO_RESUME_NS: &str = "cnr_restore_time_to_resume_ns";
/// Histogram (ns): time-to-first-batch per restore.
pub const RESTORE_TIME_TO_FIRST_BATCH_NS: &str = "cnr_restore_time_to_first_batch_ns";
/// Histogram (ns): upload-drain wait per restore.
pub const RESTORE_DRAIN_WAIT_NS: &str = "cnr_restore_drain_wait_ns";
/// Histogram (ns): fetch phase per restore.
pub const RESTORE_FETCH_NS: &str = "cnr_restore_fetch_ns";
/// Histogram (ns): decode phase per restore.
pub const RESTORE_DECODE_NS: &str = "cnr_restore_decode_ns";
/// Histogram (ns): merge phase per restore.
pub const RESTORE_MERGE_NS: &str = "cnr_restore_merge_ns";
/// Histogram (ns): WAL replay phase per restore.
pub const RESTORE_WAL_REPLAY_NS: &str = "cnr_restore_wal_replay_ns";
/// Histogram (ns): cumulative fault-in time per lazy restore.
pub const RESTORE_FAULT_IN_NS: &str = "cnr_restore_fault_in_ns";
/// Histogram (count): corruption-healing re-fetches per restore.
pub const RESTORE_FETCH_RETRIES: &str = "cnr_restore_fetch_retries";
/// Histogram (ratio): cache-tier hit rate per restore (when a cache tier
/// exists).
pub const RESTORE_CACHE_HIT_RATE: &str = "cnr_restore_cache_hit_rate";

// ---- Metrics: WAL ---------------------------------------------------------

/// Counter: records appended.
pub const WAL_APPENDS: &str = "cnr_wal_appends_total";
/// Counter: sync points performed.
pub const WAL_SYNCS: &str = "cnr_wal_syncs_total";
/// Counter: frame bytes appended.
pub const WAL_BYTES_APPENDED: &str = "cnr_wal_bytes_appended_total";
/// Counter: bytes pushed through the store by syncs (write amplification).
pub const WAL_BYTES_SYNCED: &str = "cnr_wal_bytes_synced_total";
/// Counter: segments rotated.
pub const WAL_SEGMENTS_ROTATED: &str = "cnr_wal_segments_rotated_total";
/// Counter: whole-log truncations.
pub const WAL_TRUNCATIONS: &str = "cnr_wal_truncations_total";
/// Counter (ns): simulated time charged to WAL syncs.
pub const WAL_SYNC_TIME_NS: &str = "cnr_wal_sync_time_ns_total";

// ---- Metrics: scrub -------------------------------------------------------

/// Counter: sweeps run.
pub const SCRUB_SWEEPS: &str = "cnr_scrub_sweeps_total";
/// Counter: objects examined.
pub const SCRUB_SCANNED: &str = "cnr_scrub_scanned_total";
/// Counter: objects clean on first read.
pub const SCRUB_CLEAN: &str = "cnr_scrub_clean_total";
/// Counter: legacy (pre-envelope) objects found.
pub const SCRUB_LEGACY_FOUND: &str = "cnr_scrub_legacy_found_total";
/// Counter: legacy objects upgraded in place.
pub const SCRUB_UPGRADED: &str = "cnr_scrub_upgraded_total";
/// Counter: envelope verification failures.
pub const SCRUB_CORRUPT_DETECTED: &str = "cnr_scrub_corrupt_detected_total";
/// Counter: corrupt objects healed from a replica.
pub const SCRUB_REPAIRED: &str = "cnr_scrub_repaired_total";
/// Counter: corrupt objects no source could heal.
pub const SCRUB_UNREPAIRABLE: &str = "cnr_scrub_unrepairable_total";
/// Counter: keys skipped because a lazy restore had them in flight.
pub const SCRUB_SKIPPED_IN_FLIGHT: &str = "cnr_scrub_skipped_in_flight_total";

// ---- Metrics: cache tier --------------------------------------------------

/// Counter: cache-tier read hits.
pub const CACHE_HITS: &str = "cnr_cache_hits_total";
/// Counter: cache-tier read misses.
pub const CACHE_MISSES: &str = "cnr_cache_misses_total";
