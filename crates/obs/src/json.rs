//! Hand-rolled JSON helpers.
//!
//! The workspace has no serde_json (vendored stubs only), so everything that
//! emits JSON — `cnr_bench::trajectory`'s `BENCH_*.json`, this crate's trace
//! and metrics exporters — writes it by hand. These helpers are the single
//! shared implementation of escaping and number formatting; they were
//! extracted from `cnr_bench::trajectory` and that module now delegates
//! here.

/// Escapes a string for embedding inside a JSON string literal (quotes not
/// included): `"` and `\` are backslash-escaped and control characters
/// become `\u00XX`.
pub fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Formats an `f64` as a JSON number: finite values print plainly (with a
/// trailing `.0` added to integral values so the token stays a float);
/// non-finite values, which JSON cannot represent, print as `null`.
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Minimal structural validation of one JSON text: balanced braces and
/// brackets outside string literals, properly terminated strings, and
/// non-empty input. This is not a full parser — it is the schema check used
/// to gate emitted timelines without serde_json.
pub fn check_balanced(s: &str) -> Result<(), String> {
    let mut depth: Vec<char> = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            } else if (c as u32) < 0x20 {
                return Err(format!("raw control character at byte {i}"));
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth.push(c),
            '}' if depth.pop() != Some('{') => {
                return Err(format!("unbalanced '}}' at byte {i}"));
            }
            ']' if depth.pop() != Some('[') => {
                return Err(format!("unbalanced ']' at byte {i}"));
            }
            _ => {}
        }
    }
    if in_string {
        return Err("unterminated string".to_string());
    }
    if !depth.is_empty() {
        return Err(format!("{} unclosed delimiter(s)", depth.len()));
    }
    if s.trim().is_empty() {
        return Err("empty document".to_string());
    }
    Ok(())
}

/// Extracts the raw value token of a top-level `"key": value` pair from a
/// single-line JSON object (stops at the next comma or closing brace outside
/// strings). Returns `None` if the key is absent. Sufficient for the trace
/// schema check; not a general JSON query.
pub fn find_raw_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{}\":", escape(key));
    let at = line.find(&needle)? + needle.len();
    let rest = line[at..].trim_start();
    let mut end = rest.len();
    let mut in_string = false;
    let mut escaped = false;
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' if depth > 0 => depth -= 1,
            ',' | '}' | ']' if depth == 0 => {
                end = i;
                break;
            }
            _ => {}
        }
    }
    Some(rest[..end].trim_end())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny"), "x\\u000ay");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn numbers_round_trip_as_floats() {
        assert_eq!(number(3.0), "3.0");
        assert_eq!(number(0.125), "0.125");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn balance_check_accepts_nested_and_rejects_torn() {
        check_balanced(r#"{"a": [1, {"b": "}"}]}"#).unwrap();
        assert!(check_balanced(r#"{"a": 1"#).is_err());
        assert!(check_balanced(r#"{"a": "unterminated}"#).is_err());
        assert!(check_balanced("").is_err());
    }

    #[test]
    fn find_raw_value_reads_scalars_and_stops_at_commas() {
        let line = r#"{"name":"restore.fetch","ts":1250,"dur":7,"args":{"host":"2"}}"#;
        assert_eq!(find_raw_value(line, "ts"), Some("1250"));
        assert_eq!(find_raw_value(line, "name"), Some(r#""restore.fetch""#));
        assert_eq!(find_raw_value(line, "args"), Some(r#"{"host":"2"}"#));
        assert_eq!(find_raw_value(line, "missing"), None);
    }
}
