//! Trace and metrics exporters.
//!
//! * [`chrome_trace_jsonl`] — one Chrome `trace_event` "complete" (`"X"`)
//!   event per line, loadable by `chrome://tracing` / Perfetto after
//!   wrapping the lines in a JSON array (or as-is by tools that accept
//!   JSONL). Timestamps and durations are microseconds, per the trace
//!   format.
//! * [`prometheus_text`] — a Prometheus text-exposition snapshot of a
//!   [`MetricsSnapshot`].
//! * [`validate_trace_jsonl`] — the schema check CI runs on emitted
//!   timelines: every line frame-parses (balanced JSON with the required
//!   fields) and `ts` is monotone non-decreasing.

use crate::json;
use crate::metrics::{MetricValue, MetricsSnapshot};
use crate::span::{Span, SpanKind};
use std::fmt::Write as _;

/// Renders spans as Chrome `trace_event` JSONL, one complete event per
/// line, sorted by start stamp (ties broken by record order) so the stream
/// is monotone in `ts`.
///
/// `pid` is always 0 (one engine), `tid` is the span's track (host lane),
/// and parent edges plus attrs ride in `args`.
pub fn chrome_trace_jsonl(spans: &[Span]) -> String {
    let mut ordered: Vec<&Span> = spans.iter().collect();
    ordered.sort_by_key(|s| (s.start, s.id));
    let mut out = String::new();
    for s in ordered {
        let cat = match s.kind {
            SpanKind::Sync => "sync",
            SpanKind::Concurrent => "concurrent",
        };
        write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}",
            json::escape(s.name),
            cat,
            s.start.as_micros(),
            s.duration().as_micros(),
            s.track
        )
        .expect("write to String cannot fail");
        out.push_str(",\"args\":{");
        write!(out, "\"span_id\":\"{}\"", s.id.0).expect("write to String cannot fail");
        if let Some(p) = s.parent {
            write!(out, ",\"parent\":\"{}\"", p.0).expect("write to String cannot fail");
        }
        for (k, v) in &s.attrs {
            write!(out, ",\"{}\":\"{}\"", json::escape(k), json::escape(v))
                .expect("write to String cannot fail");
        }
        out.push_str("}}\n");
    }
    out
}

/// Validates a trace JSONL document: every non-empty line is balanced JSON
/// carrying `name` (string), `ph`, numeric `ts`/`dur`/`pid`/`tid`, and the
/// `ts` sequence is monotone non-decreasing. Returns the first violation.
pub fn validate_trace_jsonl(doc: &str) -> Result<(), String> {
    let mut last_ts: Option<u128> = None;
    let mut lines = 0usize;
    for (ln, line) in doc.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        json::check_balanced(line).map_err(|e| format!("line {}: {e}", ln + 1))?;
        if !line.trim_start().starts_with('{') || !line.trim_end().ends_with('}') {
            return Err(format!("line {}: not a JSON object", ln + 1));
        }
        let name = json::find_raw_value(line, "name")
            .ok_or_else(|| format!("line {}: missing \"name\"", ln + 1))?;
        if !name.starts_with('"') {
            return Err(format!("line {}: \"name\" is not a string", ln + 1));
        }
        json::find_raw_value(line, "ph").ok_or_else(|| format!("line {}: missing \"ph\"", ln + 1))?;
        for key in ["ts", "dur", "pid", "tid"] {
            let raw = json::find_raw_value(line, key)
                .ok_or_else(|| format!("line {}: missing \"{key}\"", ln + 1))?;
            if raw.parse::<u128>().is_err() {
                return Err(format!("line {}: \"{key}\" is not a non-negative integer: {raw}", ln + 1));
            }
        }
        let ts = json::find_raw_value(line, "ts")
            .expect("checked above")
            .parse::<u128>()
            .expect("checked above");
        if let Some(prev) = last_ts {
            if ts < prev {
                return Err(format!("line {}: ts {ts} goes backwards (previous {prev})", ln + 1));
            }
        }
        last_ts = Some(ts);
    }
    if lines == 0 {
        return Err("empty timeline".to_string());
    }
    Ok(())
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

/// Renders a metrics snapshot in the Prometheus text exposition format
/// (`# TYPE` comments, `_bucket{le=...}`/`_sum`/`_count` series for
/// histograms). Metric names are sanitized to `[a-zA-Z0-9_:]`.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.metrics {
        let name = sanitize(name);
        match value {
            MetricValue::Counter(c) => {
                writeln!(out, "# TYPE {name} counter").expect("write to String cannot fail");
                writeln!(out, "{name} {c}").expect("write to String cannot fail");
            }
            MetricValue::Gauge(g) => {
                writeln!(out, "# TYPE {name} gauge").expect("write to String cannot fail");
                writeln!(out, "{name} {g}").expect("write to String cannot fail");
            }
            MetricValue::Histogram(h) => {
                writeln!(out, "# TYPE {name} histogram").expect("write to String cannot fail");
                let mut cum = 0u64;
                for (i, &bound) in h.bounds.iter().enumerate() {
                    cum += h.buckets[i];
                    writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cum}")
                        .expect("write to String cannot fail");
                }
                cum += h.buckets.last().copied().unwrap_or(0);
                writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}")
                    .expect("write to String cannot fail");
                writeln!(out, "{name}_sum {}", h.sum).expect("write to String cannot fail");
                writeln!(out, "{name}_count {}", h.count).expect("write to String cannot fail");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricsRegistry, COUNT_BOUNDS};
    use crate::span::{Obs, SpanId};
    use std::time::Duration;

    fn sample_spans() -> Vec<Span> {
        let obs = Obs::wall();
        let root = obs.record(
            Span::new("restore", Duration::ZERO, Duration::from_millis(10)).with_attr("mode", "lazy"),
        );
        obs.record(
            Span::new("restore.fetch", Duration::ZERO, Duration::from_millis(6))
                .with_parent(root)
                .with_track(1),
        );
        obs.record(
            Span::new("restore.decode", Duration::from_millis(6), Duration::from_millis(10))
                .with_parent(root),
        );
        obs.spans()
    }

    #[test]
    fn trace_jsonl_round_trips_through_the_validator() {
        let doc = chrome_trace_jsonl(&sample_spans());
        assert_eq!(doc.lines().count(), 3);
        validate_trace_jsonl(&doc).unwrap();
        let first = doc.lines().next().unwrap();
        assert_eq!(json::find_raw_value(first, "name"), Some("\"restore\""));
        assert_eq!(json::find_raw_value(first, "ts"), Some("0"));
        assert_eq!(json::find_raw_value(first, "dur"), Some("10000"));
    }

    #[test]
    fn trace_jsonl_is_sorted_by_start() {
        let obs = Obs::wall();
        obs.record(Span::new("late", Duration::from_secs(5), Duration::from_secs(6)));
        obs.record(Span::new("early", Duration::ZERO, Duration::from_secs(1)));
        let doc = chrome_trace_jsonl(&obs.spans());
        let names: Vec<_> = doc
            .lines()
            .map(|l| json::find_raw_value(l, "name").unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["\"early\"", "\"late\""]);
        validate_trace_jsonl(&doc).unwrap();
    }

    #[test]
    fn validator_rejects_backwards_ts_and_torn_lines() {
        let good = "{\"name\":\"a\",\"ph\":\"X\",\"ts\":5,\"dur\":1,\"pid\":0,\"tid\":0}";
        let earlier = "{\"name\":\"b\",\"ph\":\"X\",\"ts\":4,\"dur\":1,\"pid\":0,\"tid\":0}";
        let err = validate_trace_jsonl(&format!("{good}\n{earlier}\n")).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
        let torn = "{\"name\":\"a\",\"ph\":\"X\",\"ts\":5";
        assert!(validate_trace_jsonl(torn).is_err());
        assert!(validate_trace_jsonl("").is_err());
        let missing = "{\"name\":\"a\",\"ph\":\"X\",\"ts\":5,\"dur\":1,\"pid\":0}";
        assert!(validate_trace_jsonl(missing).unwrap_err().contains("tid"));
    }

    #[test]
    fn parent_edges_and_attrs_land_in_args() {
        let doc = chrome_trace_jsonl(&sample_spans());
        let fetch = doc.lines().nth(1).unwrap();
        let args = json::find_raw_value(fetch, "args").unwrap();
        assert!(args.contains("\"parent\":\"1\""), "{args}");
        assert_eq!(json::find_raw_value(fetch, "tid"), Some("1"));
        let root = doc.lines().next().unwrap();
        assert!(json::find_raw_value(root, "args").unwrap().contains("\"mode\":\"lazy\""));
    }

    #[test]
    fn prometheus_text_covers_all_metric_kinds() {
        let r = MetricsRegistry::new();
        r.counter_add("cnr_wal_appends_total", 3);
        r.gauge_set("cnr_capacity_fraction", 0.25);
        r.observe("cnr_restore_fetch_retries", 2.0, COUNT_BOUNDS);
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("# TYPE cnr_wal_appends_total counter"));
        assert!(text.contains("cnr_wal_appends_total 3"));
        assert!(text.contains("cnr_capacity_fraction 0.25"));
        assert!(text.contains("cnr_restore_fetch_retries_bucket{le=\"2\"} 1"));
        assert!(text.contains("cnr_restore_fetch_retries_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("cnr_restore_fetch_retries_count 1"));
    }

    #[test]
    fn zero_duration_spans_export_cleanly() {
        let obs = Obs::wall();
        let at = Duration::from_micros(42);
        obs.record(Span::new("checkpoint.register", at, at).with_parent(SpanId(7)));
        // Unknown parent is fine for export (validation of tree shape is
        // span::validate_tree's job, not the exporter's).
        let doc = chrome_trace_jsonl(&obs.spans());
        validate_trace_jsonl(&doc).unwrap();
        assert!(doc.contains("\"dur\":0"));
    }
}
