//! Deterministic synthetic CTR dataset.
//!
//! `SyntheticDataset::batch(i)` always returns the same contents for the same
//! `(spec, i)` pair, on any machine, in any order. Determinism is not a
//! convenience here — it is what makes the paper's reader/trainer consistency
//! protocol (§4.1) *testable*: after restoring a checkpoint that says "the
//! reader had produced N batches", re-reading from batch N must continue the
//! exact sample stream the failed run would have seen.

use crate::batch::Batch;
use crate::mix_seed;
use crate::teacher::TeacherModel;
use crate::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Access pattern of one embedding table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableAccessSpec {
    /// Number of rows in the table.
    pub rows: u64,
    /// Multi-hot lookups per sample (e.g. 1 for "user id", 20 for "recent posts").
    pub hot: usize,
    /// Zipf exponent of the row-popularity distribution.
    pub zipf_exponent: f64,
    /// Fraction of rows that are ever accessed, in `(0, 1]`. Production
    /// tables carry a large dead mass — categories provisioned but never
    /// seen — which is why the paper's Figure 5 coverage saturates near 52%
    /// instead of approaching 100%.
    #[serde(default = "default_active_fraction")]
    pub active_fraction: f64,
}

fn default_active_fraction() -> f64 {
    1.0
}

impl TableAccessSpec {
    /// Convenience constructor with every row active.
    pub fn new(rows: u64, hot: usize, zipf_exponent: f64) -> Self {
        Self {
            rows,
            hot,
            zipf_exponent,
            active_fraction: default_active_fraction(),
        }
    }

    /// Limits the ever-accessed set to a fraction of rows.
    pub fn with_active_fraction(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0, "active_fraction must be in (0,1]: {f}");
        self.active_fraction = f;
        self
    }

    /// Number of rows that can ever be accessed (zero only for degenerate
    /// zero-row tables, which dataset construction rejects).
    pub fn active_rows(&self) -> u64 {
        if self.rows == 0 {
            return 0;
        }
        ((self.rows as f64 * self.active_fraction).round() as u64).clamp(1, self.rows)
    }
}

/// Bijectively spreads indices `[0, active)` across `[0, rows)` so the
/// active set is not a contiguous prefix (a multiplicative stride coprime
/// with `rows`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpreadMap {
    rows: u64,
    stride: u64,
}

impl SpreadMap {
    pub(crate) fn new(rows: u64) -> Self {
        // Knuth's multiplicative constant, bumped until coprime with rows.
        let mut stride = 2_654_435_761u64 % rows.max(1);
        if stride == 0 {
            stride = 1;
        }
        while gcd(stride, rows) != 1 {
            stride += 1;
        }
        Self { rows, stride }
    }

    #[inline]
    pub(crate) fn map(&self, i: u64) -> u64 {
        (i as u128 * self.stride as u128 % self.rows as u128) as u64
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Full specification of a synthetic dataset. Two datasets built from equal
/// specs are identical sample-for-sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Master seed; every batch derives its own RNG from this.
    pub seed: u64,
    /// Samples per batch.
    pub batch_size: usize,
    /// Dense features per sample.
    pub dense_dim: usize,
    /// One entry per embedding table.
    pub tables: Vec<TableAccessSpec>,
    /// Seed of the hidden ground-truth concept (teacher model). Defaults to
    /// `seed`. Setting it separately models *domain shift*: two datasets
    /// with the same `concept_seed` but different `seed`s share the label
    /// function while drawing different samples — the transfer-learning
    /// scenario of the paper's §1.
    #[serde(default)]
    pub concept_seed: Option<u64>,
}

impl DatasetSpec {
    /// A small spec suitable for unit tests: 2 tables, tiny batch.
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            batch_size: 8,
            dense_dim: 4,
            tables: vec![
                TableAccessSpec::new(1000, 2, 1.05),
                TableAccessSpec::new(500, 1, 0.9),
            ],
            concept_seed: None,
        }
    }

    /// A medium spec used by integration tests and examples.
    pub fn medium(seed: u64) -> Self {
        Self {
            seed,
            batch_size: 128,
            dense_dim: 13,
            tables: vec![
                TableAccessSpec::new(200_000, 1, 1.05),
                TableAccessSpec::new(100_000, 4, 1.0),
                TableAccessSpec::new(50_000, 2, 0.95),
                TableAccessSpec::new(20_000, 1, 1.1),
            ],
            concept_seed: None,
        }
    }

    /// The seed of the hidden concept (teacher model).
    pub fn effective_concept_seed(&self) -> u64 {
        self.concept_seed.unwrap_or(self.seed)
    }
}

/// Deterministic synthetic dataset; cheap to clone (samplers are small).
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    spec: DatasetSpec,
    samplers: Vec<ZipfSampler>,
    spreads: Vec<SpreadMap>,
    teacher: TeacherModel,
}

impl SyntheticDataset {
    /// Builds the dataset. Panics if any table spec is degenerate, because a
    /// dataset that silently drops tables would invalidate every experiment.
    pub fn new(spec: DatasetSpec) -> Self {
        let samplers = spec
            .tables
            .iter()
            .map(|t| {
                ZipfSampler::new(t.active_rows(), t.zipf_exponent).unwrap_or_else(|| {
                    panic!(
                        "invalid table spec: rows={} zipf_exponent={}",
                        t.rows, t.zipf_exponent
                    )
                })
            })
            .collect();
        let spreads = spec.tables.iter().map(|t| SpreadMap::new(t.rows)).collect();
        let teacher = TeacherModel::new(spec.effective_concept_seed(), spec.dense_dim);
        Self {
            spec,
            samplers,
            spreads,
            teacher,
        }
    }

    /// The dataset specification.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// The hidden ground-truth model (exposed for analysis/tests).
    pub fn teacher(&self) -> &TeacherModel {
        &self.teacher
    }

    /// Generates batch `index`. Deterministic in `(spec, index)`.
    pub fn batch(&self, index: u64) -> Batch {
        let spec = &self.spec;
        let mut rng = StdRng::seed_from_u64(mix_seed(spec.seed, index ^ BATCH_STREAM));
        let bs = spec.batch_size;
        let mut dense = Vec::with_capacity(bs * spec.dense_dim);
        let mut sparse: Vec<Vec<u32>> = spec
            .tables
            .iter()
            .map(|t| Vec::with_capacity(bs * t.hot))
            .collect();
        let mut labels = Vec::with_capacity(bs);

        // Scratch space for the per-sample teacher call.
        let mut sample_dense = vec![0.0f32; spec.dense_dim];
        for _ in 0..bs {
            for d in sample_dense.iter_mut() {
                *d = rng.gen_range(-1.0f32..1.0);
            }
            dense.extend_from_slice(&sample_dense);

            let mut sample_sparse: Vec<Vec<u32>> = Vec::with_capacity(spec.tables.len());
            for (t, table) in spec.tables.iter().enumerate() {
                let mut idx = Vec::with_capacity(table.hot);
                for _ in 0..table.hot {
                    let draw = self.samplers[t].sample(&mut rng);
                    idx.push(self.spreads[t].map(draw) as u32);
                }
                sparse[t].extend_from_slice(&idx);
                sample_sparse.push(idx);
            }
            let views: Vec<&[u32]> = sample_sparse.iter().map(|v| v.as_slice()).collect();
            labels.push(self.teacher.label(&sample_dense, &views, &mut rng));
        }

        Batch {
            index,
            batch_size: bs,
            dense_dim: spec.dense_dim,
            hot: spec.tables.iter().map(|t| t.hot).collect(),
            dense,
            sparse,
            labels,
        }
    }

    /// Positive-label base rate estimated over `n` batches (analysis helper).
    pub fn estimate_ctr(&self, n: u64) -> f64 {
        let mut clicks = 0u64;
        let mut total = 0u64;
        for i in 0..n {
            let b = self.batch(i);
            clicks += b.labels.iter().filter(|&&l| l == 1.0).count() as u64;
            total += b.batch_size as u64;
        }
        clicks as f64 / total as f64
    }
}

/// RNG stream id reserved for batch generation.
const BATCH_STREAM: u64 = 0xBA7C_0002;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_deterministic() {
        let ds1 = SyntheticDataset::new(DatasetSpec::tiny(77));
        let ds2 = SyntheticDataset::new(DatasetSpec::tiny(77));
        for i in [0u64, 1, 5, 1000] {
            assert_eq!(ds1.batch(i), ds2.batch(i), "batch {i} differs");
        }
    }

    #[test]
    fn batches_are_order_independent() {
        let ds = SyntheticDataset::new(DatasetSpec::tiny(3));
        let early = ds.batch(10);
        let _ = ds.batch(11);
        let _ = ds.batch(0);
        assert_eq!(early, ds.batch(10));
    }

    #[test]
    fn different_seeds_give_different_data() {
        let a = SyntheticDataset::new(DatasetSpec::tiny(1)).batch(0);
        let b = SyntheticDataset::new(DatasetSpec::tiny(2)).batch(0);
        assert_ne!(a, b);
    }

    #[test]
    fn different_indices_give_different_data() {
        let ds = SyntheticDataset::new(DatasetSpec::tiny(1));
        assert_ne!(ds.batch(0), ds.batch(1));
    }

    #[test]
    fn batches_validate() {
        let ds = SyntheticDataset::new(DatasetSpec::medium(5));
        for i in 0..3 {
            ds.batch(i).validate().expect("generated batch invalid");
        }
    }

    #[test]
    fn indices_respect_table_bounds() {
        let ds = SyntheticDataset::new(DatasetSpec::tiny(9));
        let b = ds.batch(4);
        for (t, spec) in ds.spec().tables.iter().enumerate() {
            for &idx in &b.sparse[t] {
                assert!((idx as u64) < spec.rows);
            }
        }
    }

    #[test]
    fn ctr_is_nontrivial() {
        // The teacher should produce a base rate away from 0 and 1 so that
        // logloss training has signal.
        let ds = SyntheticDataset::new(DatasetSpec::tiny(123));
        let ctr = ds.estimate_ctr(50);
        assert!(ctr > 0.05 && ctr < 0.95, "degenerate CTR {ctr}");
    }

    #[test]
    #[should_panic(expected = "invalid table spec")]
    fn degenerate_table_spec_panics() {
        let mut spec = DatasetSpec::tiny(1);
        spec.tables[0].rows = 0;
        let _ = SyntheticDataset::new(spec);
    }

    #[test]
    fn active_fraction_caps_distinct_rows() {
        let mut spec = DatasetSpec::tiny(8);
        spec.tables[0] = TableAccessSpec::new(1000, 2, 0.5).with_active_fraction(0.2);
        let ds = SyntheticDataset::new(spec);
        let mut seen = std::collections::HashSet::new();
        for i in 0..400 {
            let b = ds.batch(i);
            for &r in &b.sparse[0] {
                seen.insert(r);
            }
        }
        assert!(
            seen.len() <= 200,
            "active fraction 0.2 of 1000 rows allows at most 200 distinct, saw {}",
            seen.len()
        );
        assert!(seen.len() > 100, "flat zipf should cover most of the active set");
        // The active set is spread across the table, not a prefix.
        assert!(seen.iter().any(|&r| r > 500));
    }

    #[test]
    fn spread_map_is_bijective() {
        for rows in [7u64, 100, 1000, 65536] {
            let m = SpreadMap::new(rows);
            let mut seen = std::collections::HashSet::new();
            for i in 0..rows {
                assert!(seen.insert(m.map(i)), "collision at {i} (rows={rows})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "active_fraction must be in (0,1]")]
    fn zero_active_fraction_panics() {
        let _ = TableAccessSpec::new(10, 1, 1.0).with_active_fraction(0.0);
    }

    #[test]
    fn concept_seed_shares_labels_across_distributions() {
        // Same concept, different seed: identical inputs get identical
        // ground-truth probabilities, while the sample streams differ.
        let a = SyntheticDataset::new(DatasetSpec::tiny(1));
        let mut spec_b = DatasetSpec::tiny(2);
        spec_b.concept_seed = Some(1);
        let b = SyntheticDataset::new(spec_b);
        let dense = [0.3f32, -0.1, 0.4, 0.2];
        let sparse: &[&[u32]] = &[&[5, 9], &[3]];
        assert_eq!(
            a.teacher().probability(&dense, sparse),
            b.teacher().probability(&dense, sparse),
            "shared concept must produce identical label functions"
        );
        assert_ne!(a.batch(0), b.batch(0), "streams must still differ");
        // Without concept sharing, the label functions differ.
        let c = SyntheticDataset::new(DatasetSpec::tiny(2));
        assert_ne!(
            a.teacher().probability(&dense, sparse),
            c.teacher().probability(&dense, sparse)
        );
    }
}
