//! Hidden "teacher" model that generates labels with learnable structure.
//!
//! Real production CTR data has signal: certain users and items genuinely
//! click more. A trainable substitute must preserve that, otherwise training
//! loss never decreases and the paper's accuracy-degradation experiment
//! (Figure 14) would measure nothing. The teacher computes a ground-truth
//! logit as
//!
//! ```text
//! z = w · x_dense  +  Σ_t Σ_j affinity(t, idx[t][j])
//! ```
//!
//! and labels are Bernoulli(sigmoid(z)). `affinity` is a *hash-derived*
//! pseudo-random weight per (table, row), so the teacher needs O(1) memory
//! even when tables have hundreds of millions of rows.

use crate::mix_seed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic ground-truth model that produces labels for synthetic data.
#[derive(Debug, Clone)]
pub struct TeacherModel {
    seed: u64,
    dense_weights: Vec<f32>,
    bias: f32,
    /// Scales the sparse contribution so neither block dominates.
    sparse_scale: f32,
}

impl TeacherModel {
    /// Creates a teacher with `dense_dim` dense weights drawn from the seed.
    pub fn new(seed: u64, dense_dim: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(mix_seed(seed, TEACHER_STREAM));
        let dense_weights = (0..dense_dim)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        let bias = rng.gen_range(-0.25f32..0.25);
        Self {
            seed,
            dense_weights,
            bias,
            sparse_scale: 0.5,
        }
    }

    /// Hash-derived affinity weight for row `row` of table `table`, in [-1, 1].
    #[inline]
    pub fn affinity(&self, table: usize, row: u32) -> f32 {
        let h = mix_seed(self.seed, ((table as u64) << 32) ^ row as u64 ^ 0xAFF1);
        // Map the top 24 bits to [-1, 1).
        let unit = (h >> 40) as f32 / (1u64 << 24) as f32; // [0, 1)
        unit * 2.0 - 1.0
    }

    /// Ground-truth logit for a sample.
    pub fn logit(&self, dense: &[f32], sparse: &[&[u32]]) -> f32 {
        debug_assert_eq!(dense.len(), self.dense_weights.len());
        let mut z = self.bias;
        for (x, w) in dense.iter().zip(&self.dense_weights) {
            z += x * w;
        }
        let mut sparse_sum = 0.0f32;
        let mut lookups = 0usize;
        for (t, idx) in sparse.iter().enumerate() {
            for &row in *idx {
                sparse_sum += self.affinity(t, row);
                lookups += 1;
            }
        }
        if lookups > 0 {
            z += self.sparse_scale * sparse_sum / (lookups as f32).sqrt();
        }
        z
    }

    /// Ground-truth click probability for a sample.
    pub fn probability(&self, dense: &[f32], sparse: &[&[u32]]) -> f32 {
        sigmoid(self.logit(dense, sparse))
    }

    /// Samples a binary label from the ground-truth probability.
    pub fn label<R: Rng + ?Sized>(&self, dense: &[f32], sparse: &[&[u32]], rng: &mut R) -> f32 {
        if rng.gen::<f32>() < self.probability(dense, sparse) {
            1.0
        } else {
            0.0
        }
    }
}

/// Numerically-stable logistic function.
#[inline]
pub fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// RNG stream id reserved for teacher weight initialization.
const TEACHER_STREAM: u64 = 0x7EAC_0001;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        for z in [-20.0, -3.0, -0.5, 0.5, 3.0, 20.0] {
            let s = sigmoid(z);
            assert!((0.0..=1.0).contains(&s));
            assert!((s + sigmoid(-z) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn affinity_is_deterministic_and_bounded() {
        let t = TeacherModel::new(9, 4);
        for table in 0..3 {
            for row in [0u32, 1, 999_999] {
                let a = t.affinity(table, row);
                assert!((-1.0..=1.0).contains(&a));
                assert_eq!(a, t.affinity(table, row));
            }
        }
    }

    #[test]
    fn different_rows_get_different_affinities() {
        let t = TeacherModel::new(9, 4);
        let distinct: std::collections::HashSet<u32> =
            (0..100u32).map(|r| t.affinity(0, r).to_bits()).collect();
        assert!(distinct.len() > 90, "affinities look degenerate");
    }

    #[test]
    fn logit_moves_with_dense_features() {
        let t = TeacherModel::new(5, 2);
        let idx: &[&[u32]] = &[&[1, 2]];
        let z0 = t.logit(&[0.0, 0.0], idx);
        let z1 = t.logit(&[1.0, 1.0], idx);
        assert_ne!(z0, z1);
    }

    #[test]
    fn labels_follow_probability() {
        use rand::SeedableRng;
        let t = TeacherModel::new(21, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        // Find a strongly positive sample and check its empirical click rate.
        let dense = [1.0f32, 1.0];
        let sparse: &[&[u32]] = &[&[3]];
        let p = t.probability(&dense, sparse);
        let n = 20_000;
        let clicks: f32 = (0..n).map(|_| t.label(&dense, sparse, &mut rng)).sum();
        let rate = clicks / n as f32;
        assert!(
            (rate - p).abs() < 0.02,
            "empirical {rate} vs true {p} diverge"
        );
    }
}
