//! Zipfian sampling via rejection-inversion.
//!
//! Embedding-table accesses in production recommendation systems are heavily
//! skewed: a small set of hot rows (popular users/items) absorbs most lookups
//! while a long tail is touched rarely. The paper's key motivation data
//! (Figure 5: only ~52% of the model touched after 11 *billion* samples;
//! Figure 6: ~26% touched per 30-minute window) is exactly the coverage curve
//! of a heavy-tailed access distribution, so the fidelity of this sampler
//! determines the fidelity of the incremental-checkpointing experiments.
//!
//! The implementation is the rejection-inversion algorithm of Hörmann and
//! Derflinger ("Rejection-inversion to generate variates from monotone
//! discrete distributions", ACM TOMACS 1996), which samples
//! `P(k) ∝ 1 / k^s` over `k ∈ [1, n]` in O(1) expected time with no
//! precomputed tables — important because our tables have tens of millions of
//! rows and we create one sampler per embedding table.

use rand::Rng;

/// Samples from a Zipf distribution `P(k) ∝ k^-s` over `{0, 1, .., n-1}`.
///
/// Internally the classic algorithm is defined over `{1, .., n}`; this type
/// shifts the result down by one so it can be used directly as a row index.
///
/// # Examples
///
/// ```
/// use cnr_workload::ZipfSampler;
/// use rand::SeedableRng;
///
/// let zipf = ZipfSampler::new(1_000_000, 1.05).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let row = zipf.sample(&mut rng);
/// assert!(row < 1_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    s: f64,
    // Cached constants of the rejection-inversion scheme.
    h_integral_x1: f64,
    h_integral_num: f64,
    s_const: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `n` elements with exponent `s > 0`.
    ///
    /// Returns `None` when `n == 0` or `s` is not a positive finite number.
    pub fn new(n: u64, s: f64) -> Option<Self> {
        if n == 0 || !s.is_finite() || s <= 0.0 {
            return None;
        }
        let h_integral_x1 = h_integral(1.5, s) - 1.0;
        let h_integral_num = h_integral(n as f64 + 0.5, s);
        let s_const = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
        Some(Self {
            n,
            s,
            h_integral_x1,
            h_integral_num,
            s_const,
        })
    }

    /// Number of elements in the support.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Draws one sample in `[0, n)`. Expected O(1) time.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 0;
        }
        loop {
            let u: f64 = self.h_integral_num
                + rng.gen::<f64>() * (self.h_integral_x1 - self.h_integral_num);
            // u is in [h_integral_x1, h_integral_num) (note: num < x1 since H decreases).
            let x = h_integral_inverse(u, self.s);
            let mut k = (x + 0.5) as u64;
            k = k.clamp(1, self.n);
            // Acceptance tests: the first is a fast path that accepts the vast
            // majority of candidates; the second is the exact rejection test.
            if (k as f64 - x <= self.s_const)
                || (u >= h_integral(k as f64 + 0.5, self.s) - h(k as f64, self.s))
            {
                return k - 1;
            }
        }
    }

    /// Probability mass of element `k` (0-based), computed exactly (O(n) the
    /// first time it is asked for the normalizer). Intended for tests and
    /// analysis, not the hot path.
    pub fn pmf(&self, k: u64) -> f64 {
        assert!(k < self.n, "pmf index {k} out of range (n={})", self.n);
        let z: f64 = (1..=self.n).map(|i| (i as f64).powf(-self.s)).sum();
        ((k + 1) as f64).powf(-self.s) / z
    }

    /// Probability mass of every element `0..n` in one pass: the normalizer
    /// is computed once, so scoring a whole table costs O(n) instead of the
    /// O(n²) that per-element [`ZipfSampler::pmf`] calls would. The restore
    /// planner uses this to rank embedding rows by expected access heat.
    pub fn pmf_all(&self) -> Vec<f64> {
        let z: f64 = (1..=self.n).map(|i| (i as f64).powf(-self.s)).sum();
        (1..=self.n).map(|i| (i as f64).powf(-self.s) / z).collect()
    }
}

/// `H(x) = ∫ x^-s dx = (x^(1-s) - 1) / (1 - s)`, with the `s == 1` limit `ln x`.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - s) * log_x) * log_x
}

/// `h(x) = x^-s`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(x: f64, s: f64) -> f64 {
    let mut t = x * (1.0 - s);
    if t < -1.0 {
        // Numerical guard: t must stay >= -1 for the power below to be defined.
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// `helper1(x) = ln(1+x)/x` with a Taylor fallback near zero.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `helper2(x) = (e^x - 1)/x` with a Taylor fallback near zero.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(zipf: &ZipfSampler, draws: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; zipf.n() as usize];
        for _ in 0..draws {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(ZipfSampler::new(0, 1.0).is_none());
        assert!(ZipfSampler::new(10, 0.0).is_none());
        assert!(ZipfSampler::new(10, -1.0).is_none());
        assert!(ZipfSampler::new(10, f64::NAN).is_none());
        assert!(ZipfSampler::new(10, f64::INFINITY).is_none());
    }

    #[test]
    fn single_element_support() {
        let zipf = ZipfSampler::new(1, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let zipf = ZipfSampler::new(1000, 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100_000 {
            assert!(zipf.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let zipf = ZipfSampler::new(50, 1.1).unwrap();
        let draws = 400_000;
        let counts = histogram(&zipf, draws, 11);
        for k in 0..10 {
            let expected = zipf.pmf(k) * draws as f64;
            let got = counts[k as usize] as f64;
            let tol = 4.0 * expected.sqrt() + 10.0; // ~4 sigma
            assert!(
                (got - expected).abs() < tol,
                "k={k}: got {got}, expected {expected} ± {tol}"
            );
        }
    }

    #[test]
    fn skew_orders_head_before_tail() {
        let zipf = ZipfSampler::new(10_000, 1.0).unwrap();
        let counts = histogram(&zipf, 200_000, 13);
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[1000]);
    }

    #[test]
    fn exact_s1_limit_matches_log_formula() {
        // For s exactly 1, H(x) = ln(x); check the internal helpers agree.
        assert!((h_integral(std::f64::consts::E, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn higher_exponent_concentrates_mass() {
        let mild = ZipfSampler::new(100_000, 0.6).unwrap();
        let steep = ZipfSampler::new(100_000, 1.4).unwrap();
        let mild_counts = histogram(&mild, 100_000, 17);
        let steep_counts = histogram(&steep, 100_000, 17);
        let head = |c: &[u64]| c.iter().take(100).sum::<u64>();
        assert!(head(&steep_counts) > head(&mild_counts) * 2);
    }

    #[test]
    fn pmf_sums_to_one() {
        let zipf = ZipfSampler::new(200, 1.3).unwrap();
        let total: f64 = (0..200).map(|k| zipf.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_all_matches_per_element_pmf() {
        let zipf = ZipfSampler::new(64, 1.1).unwrap();
        let all = zipf.pmf_all();
        assert_eq!(all.len(), 64);
        for k in 0..64u64 {
            assert!((all[k as usize] - zipf.pmf(k)).abs() < 1e-12, "k={k}");
        }
        // Monotone decreasing: row 0 is the hottest.
        for pair in all.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
    }
}
