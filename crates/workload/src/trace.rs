//! Embedding-access traces: record once, replay anywhere.
//!
//! Two uses in this repository:
//!
//! 1. **Analysis** — Figures 5 and 6 of the paper are computed from access
//!    traces (which rows were touched when). Recording the trace once and
//!    replaying it against different window sizes is far cheaper than
//!    re-running training per window length.
//! 2. **Reproducibility** — a trace captured from one experiment can be
//!    replayed as the access stream of another (e.g. feeding the tracking
//!    ablation benches), removing model math from micro-benchmarks.

use serde::{Deserialize, Serialize};

/// One embedding access: table `table`, row `row`, during batch `batch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Global batch index in which the access happened.
    pub batch: u64,
    /// Embedding table id.
    pub table: u32,
    /// Row index within the table.
    pub row: u32,
}

/// A compact in-memory access trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AccessTrace {
    events: Vec<TraceEvent>,
}

impl AccessTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a trace with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            events: Vec::with_capacity(cap),
        }
    }

    /// Appends an access event. Events must be appended in non-decreasing
    /// batch order; this is asserted in debug builds because the windowed
    /// replay below depends on it.
    pub fn record(&mut self, batch: u64, table: u32, row: u32) {
        debug_assert!(
            self.events.last().is_none_or(|e| e.batch <= batch),
            "trace events must be appended in batch order"
        );
        self.events.push(TraceEvent { batch, table, row });
    }

    /// All events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over events whose batch index lies in `[from, to)`.
    pub fn window(&self, from: u64, to: u64) -> impl Iterator<Item = &TraceEvent> {
        let start = self.events.partition_point(|e| e.batch < from);
        let end = self.events.partition_point(|e| e.batch < to);
        self.events[start..end].iter()
    }

    /// Largest batch index present, or `None` for an empty trace.
    pub fn last_batch(&self) -> Option<u64> {
        self.events.last().map(|e| e.batch)
    }

    /// Counts distinct `(table, row)` pairs in `[from, to)`. This is the
    /// "fraction of model modified in a window" numerator of Figure 6.
    pub fn distinct_rows_in_window(&self, from: u64, to: u64) -> usize {
        let mut seen = std::collections::HashSet::new();
        for e in self.window(from, to) {
            seen.insert(((e.table as u64) << 32) | e.row as u64);
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> AccessTrace {
        let mut t = AccessTrace::new();
        t.record(0, 0, 5);
        t.record(0, 1, 5);
        t.record(1, 0, 5);
        t.record(1, 0, 6);
        t.record(3, 0, 7);
        t
    }

    #[test]
    fn window_selects_batch_range() {
        let t = sample_trace();
        let w: Vec<_> = t.window(1, 3).collect();
        assert_eq!(w.len(), 2);
        assert!(w.iter().all(|e| e.batch == 1));
    }

    #[test]
    fn window_bounds_are_half_open() {
        let t = sample_trace();
        assert_eq!(t.window(0, 1).count(), 2);
        assert_eq!(t.window(3, 4).count(), 1);
        assert_eq!(t.window(4, 100).count(), 0);
    }

    #[test]
    fn distinct_rows_deduplicates_within_window() {
        let t = sample_trace();
        // Batches [0,2): rows are (0,5), (1,5), (0,5), (0,6) -> 3 distinct.
        assert_eq!(t.distinct_rows_in_window(0, 2), 3);
    }

    #[test]
    fn distinct_rows_separates_tables() {
        let t = sample_trace();
        // (0,5) and (1,5) are different rows even though row id matches.
        assert_eq!(t.distinct_rows_in_window(0, 1), 2);
    }

    #[test]
    fn last_batch_and_len() {
        let t = sample_trace();
        assert_eq!(t.last_batch(), Some(3));
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert!(AccessTrace::new().is_empty());
        assert_eq!(AccessTrace::new().last_batch(), None);
    }
}
