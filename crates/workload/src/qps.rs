//! Mapping between sample counts and simulated wall-clock time.
//!
//! The paper reports several results against *time* (Figure 6: model fraction
//! modified per 10/20/30/60-minute window; 30-minute checkpoint intervals)
//! while the trainer operates in *samples*. Production training at Facebook
//! runs at ~500K queries per second (§2.2); this model performs that unit
//! conversion so experiments can sweep "interval minutes" without a real
//! cluster.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Constant-rate throughput model: `qps` training samples per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QpsModel {
    qps: f64,
}

impl QpsModel {
    /// Creates a throughput model. Panics on non-positive rates, which would
    /// make every downstream duration infinite.
    pub fn new(qps: f64) -> Self {
        assert!(qps.is_finite() && qps > 0.0, "qps must be positive: {qps}");
        Self { qps }
    }

    /// The paper's quoted production rate (§2.2): 500K samples/second.
    pub fn paper_default() -> Self {
        Self::new(500_000.0)
    }

    /// Samples processed per second.
    pub fn qps(&self) -> f64 {
        self.qps
    }

    /// How many whole samples complete within `d`.
    pub fn samples_in(&self, d: Duration) -> u64 {
        (self.qps * d.as_secs_f64()).floor() as u64
    }

    /// How many whole batches of `batch_size` complete within `d`.
    pub fn batches_in(&self, d: Duration, batch_size: usize) -> u64 {
        assert!(batch_size > 0);
        self.samples_in(d) / batch_size as u64
    }

    /// Time required to process `samples`.
    pub fn duration_for_samples(&self, samples: u64) -> Duration {
        Duration::from_secs_f64(samples as f64 / self.qps)
    }

    /// Time required to process `batches` of `batch_size`.
    pub fn duration_for_batches(&self, batches: u64, batch_size: usize) -> Duration {
        self.duration_for_samples(batches * batch_size as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_rate() {
        let m = QpsModel::paper_default();
        assert_eq!(m.samples_in(Duration::from_secs(1)), 500_000);
    }

    #[test]
    fn thirty_minutes_of_batches() {
        let m = QpsModel::new(1000.0);
        assert_eq!(m.batches_in(Duration::from_secs(60), 100), 600);
    }

    #[test]
    fn roundtrip_samples_duration() {
        let m = QpsModel::new(12_345.0);
        let d = m.duration_for_samples(1_000_000);
        let back = m.samples_in(d);
        assert!((back as i64 - 1_000_000i64).abs() <= 1);
    }

    #[test]
    #[should_panic(expected = "qps must be positive")]
    fn zero_rate_panics() {
        let _ = QpsModel::new(0.0);
    }
}
