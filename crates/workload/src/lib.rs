//! Synthetic workloads for training deep learning recommendation models.
//!
//! The Check-N-Run paper ([Eisenman et al., NSDI'22]) evaluates on production
//! click datasets that are not public. This crate provides the closest
//! synthetic equivalent that exercises the same code paths:
//!
//! * **Skewed sparse access** — embedding-table lookups in production
//!   recommendation workloads follow a heavy-tailed (approximately Zipfian)
//!   popularity distribution. The fraction-of-model-modified curves in the
//!   paper (Figures 5 and 6) are a direct consequence of this skew, so the
//!   [`zipf::ZipfSampler`] is the load-bearing piece of this crate.
//! * **Determinism** — batch `i` of a [`dataset::SyntheticDataset`] has
//!   identical contents no matter when or where it is generated. This is what
//!   lets integration tests verify the paper's *reader/trainer gap avoidance*
//!   protocol: resuming from a checkpointed reader state must replay the exact
//!   same sample stream.
//! * **Learnable signal** — labels are produced by a hidden
//!   [`teacher::TeacherModel`], so a model trained on this data has a
//!   decreasing loss, and a checkpoint-restore that perturbs the model (e.g.
//!   via quantization) produces a *measurable* accuracy degradation, which is
//!   what Figure 14 of the paper measures.
//!
//! [Eisenman et al., NSDI'22]: https://www.usenix.org/conference/nsdi22/presentation/eisenman

pub mod batch;
pub mod dataset;
pub mod qps;
pub mod teacher;
pub mod trace;
pub mod zipf;

pub use batch::Batch;
pub use dataset::{DatasetSpec, SyntheticDataset, TableAccessSpec};
pub use qps::QpsModel;
pub use teacher::TeacherModel;
pub use trace::{AccessTrace, TraceEvent};
pub use zipf::ZipfSampler;

/// Mixes a stream identifier into a seed, producing an independent seed.
///
/// This is a [SplitMix64](https://prng.di.unimi.it/splitmix64.c) finalizer,
/// used everywhere the crate needs "one RNG per (seed, index)" determinism.
#[inline]
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_is_deterministic() {
        assert_eq!(mix_seed(42, 7), mix_seed(42, 7));
    }

    #[test]
    fn mix_seed_separates_streams() {
        assert_ne!(mix_seed(42, 7), mix_seed(42, 8));
        assert_ne!(mix_seed(42, 7), mix_seed(43, 7));
    }

    #[test]
    fn mix_seed_zero_is_not_fixed_point() {
        assert_ne!(mix_seed(0, 0), 0);
    }
}
