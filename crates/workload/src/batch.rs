//! A mini-batch of training samples.
//!
//! The layout mirrors how DLRM-style trainers consume data: one dense feature
//! block, one multi-hot sparse index block per embedding table, and one label
//! per sample. Everything is stored flattened for cache friendliness; the
//! accessors recover per-sample views.

/// One mini-batch of CTR training samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Global index of this batch within its dataset (0-based).
    pub index: u64,
    /// Number of samples in the batch.
    pub batch_size: usize,
    /// Dense feature dimensionality per sample.
    pub dense_dim: usize,
    /// Multi-hot lookups per table per sample (`hot[t]` indices per sample).
    pub hot: Vec<usize>,
    /// Flattened dense features, `batch_size * dense_dim`.
    pub dense: Vec<f32>,
    /// Per table: flattened sparse indices, `batch_size * hot[t]`.
    pub sparse: Vec<Vec<u32>>,
    /// Binary labels in `{0.0, 1.0}`, one per sample.
    pub labels: Vec<f32>,
}

impl Batch {
    /// Dense feature slice of sample `i`.
    #[inline]
    pub fn dense_of(&self, i: usize) -> &[f32] {
        let d = self.dense_dim;
        &self.dense[i * d..(i + 1) * d]
    }

    /// Sparse indices of sample `i` into table `t`.
    #[inline]
    pub fn sparse_of(&self, t: usize, i: usize) -> &[u32] {
        let h = self.hot[t];
        &self.sparse[t][i * h..(i + 1) * h]
    }

    /// Number of embedding tables this batch addresses.
    #[inline]
    pub fn num_tables(&self) -> usize {
        self.sparse.len()
    }

    /// Total number of embedding lookups performed by this batch.
    pub fn total_lookups(&self) -> usize {
        self.hot.iter().map(|h| h * self.batch_size).sum()
    }

    /// Validates internal consistency (lengths agree with the header fields).
    ///
    /// Used by tests and by the reader tier after deserialization.
    pub fn validate(&self) -> Result<(), String> {
        if self.dense.len() != self.batch_size * self.dense_dim {
            return Err(format!(
                "dense len {} != batch_size {} * dense_dim {}",
                self.dense.len(),
                self.batch_size,
                self.dense_dim
            ));
        }
        if self.labels.len() != self.batch_size {
            return Err(format!(
                "labels len {} != batch_size {}",
                self.labels.len(),
                self.batch_size
            ));
        }
        if self.sparse.len() != self.hot.len() {
            return Err(format!(
                "sparse tables {} != hot spec {}",
                self.sparse.len(),
                self.hot.len()
            ));
        }
        for (t, (idx, h)) in self.sparse.iter().zip(self.hot.iter()).enumerate() {
            if idx.len() != self.batch_size * h {
                return Err(format!(
                    "table {t}: sparse len {} != batch_size {} * hot {}",
                    idx.len(),
                    self.batch_size,
                    h
                ));
            }
        }
        for &l in &self.labels {
            if l != 0.0 && l != 1.0 {
                return Err(format!("label {l} is not binary"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_batch() -> Batch {
        Batch {
            index: 5,
            batch_size: 2,
            dense_dim: 3,
            hot: vec![2, 1],
            dense: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
            sparse: vec![vec![1, 2, 3, 4], vec![9, 8]],
            labels: vec![1.0, 0.0],
        }
    }

    #[test]
    fn accessors_slice_correctly() {
        let b = tiny_batch();
        assert_eq!(b.dense_of(0), &[0.1, 0.2, 0.3]);
        assert_eq!(b.dense_of(1), &[0.4, 0.5, 0.6]);
        assert_eq!(b.sparse_of(0, 0), &[1, 2]);
        assert_eq!(b.sparse_of(0, 1), &[3, 4]);
        assert_eq!(b.sparse_of(1, 1), &[8]);
        assert_eq!(b.num_tables(), 2);
        // Two samples with 2 lookups in table 0 and 1 lookup in table 1.
        assert_eq!(b.total_lookups(), 2 * (2 + 1));
    }

    #[test]
    fn validate_accepts_consistent_batch() {
        assert!(tiny_batch().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_dense_len() {
        let mut b = tiny_batch();
        b.dense.pop();
        assert!(b.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_sparse_len() {
        let mut b = tiny_batch();
        b.sparse[1].pop();
        assert!(b.validate().is_err());
    }

    #[test]
    fn validate_rejects_non_binary_label() {
        let mut b = tiny_batch();
        b.labels[0] = 0.5;
        assert!(b.validate().is_err());
    }
}
