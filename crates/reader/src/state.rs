//! Serializable reader position.

use serde::{Deserialize, Serialize};

/// Where the reader tier stands in the (logically infinite) sample stream.
///
/// Captured at checkpoint time *after* the batch budget has drained, so it is
/// exactly consistent with the trainer's iteration counter (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReaderState {
    /// Index of the next batch the reader will produce.
    pub next_batch: u64,
}

impl ReaderState {
    /// State at the start of a fresh run.
    pub fn fresh() -> Self {
        Self::default()
    }

    /// State positioned at `next_batch`.
    pub fn at(next_batch: u64) -> Self {
        Self { next_batch }
    }

    /// Serializes to a fixed 8-byte little-endian encoding (stored inside
    /// checkpoint manifests).
    pub fn to_bytes(self) -> [u8; 8] {
        self.next_batch.to_le_bytes()
    }

    /// Parses the 8-byte encoding.
    pub fn from_bytes(bytes: [u8; 8]) -> Self {
        Self {
            next_batch: u64::from_le_bytes(bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bytes() {
        let s = ReaderState::at(0xDEAD_BEEF_0123);
        assert_eq!(ReaderState::from_bytes(s.to_bytes()), s);
    }

    #[test]
    fn fresh_is_zero() {
        assert_eq!(ReaderState::fresh().next_batch, 0);
    }
}
