//! Reader master: parallel batch generation, ordered delivery, batch budgets.
//!
//! Worker threads claim batch indices from a shared counter, generate batches
//! (CPU-bound: the dataset is synthetic), and insert them into a reorder
//! buffer. The consumer side ([`ReaderMaster::next_batch`]) delivers batches
//! strictly in index order, because the trainer's synchronous SGD consumes a
//! deterministic stream. Generation never runs more than `queue_depth`
//! batches ahead of consumption, and never past the current **budget** —
//! the §4.1 protocol that guarantees no in-flight batches at checkpoint time.

use crate::state::ReaderState;
use cnr_workload::{Batch, SyntheticDataset};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Reader tier configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReaderConfig {
    /// Worker threads generating batches (the paper uses hundreds of reader
    /// nodes; we use threads).
    pub workers: usize,
    /// Maximum batches buffered ahead of the trainer.
    pub queue_depth: usize,
}

impl Default for ReaderConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 8,
        }
    }
}

#[derive(Debug)]
struct Shared {
    state: Mutex<Inner>,
    /// Signals workers (budget extended, space freed, shutdown) and the
    /// consumer (batch ready).
    cond: Condvar,
}

#[derive(Debug)]
struct Inner {
    /// Next batch index not yet claimed by any worker.
    next_to_generate: u64,
    /// Next batch index to hand to the trainer.
    next_to_emit: u64,
    /// Exclusive upper bound of the current budget.
    budget_end: u64,
    /// Exclusive upper bound of warm *generation* (see
    /// [`ReaderMaster::preload`]): workers may generate up to
    /// `max(budget_end, preload_end)` but delivery stays budget-gated.
    preload_end: u64,
    /// Generated batches awaiting ordered delivery.
    ready: BTreeMap<u64, Batch>,
    shutdown: bool,
}

/// The reader master. Dropping it shuts the workers down.
pub struct ReaderMaster {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    queue_depth: usize,
}

impl ReaderMaster {
    /// Starts the reader tier at a fresh state.
    pub fn new(dataset: SyntheticDataset, config: ReaderConfig) -> Self {
        Self::from_state(dataset, ReaderState::fresh(), config)
    }

    /// Starts the reader tier from a restored checkpoint state.
    pub fn from_state(
        dataset: SyntheticDataset,
        state: ReaderState,
        config: ReaderConfig,
    ) -> Self {
        assert!(config.workers >= 1, "need at least one reader worker");
        assert!(config.queue_depth >= 1, "queue depth must be >= 1");
        let shared = Arc::new(Shared {
            state: Mutex::new(Inner {
                next_to_generate: state.next_batch,
                next_to_emit: state.next_batch,
                budget_end: state.next_batch,
                preload_end: state.next_batch,
                ready: BTreeMap::new(),
                shutdown: false,
            }),
            cond: Condvar::new(),
        });
        let dataset = Arc::new(dataset);
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let dataset = Arc::clone(&dataset);
                let depth = config.queue_depth;
                std::thread::spawn(move || worker_loop(&shared, &dataset, depth))
            })
            .collect();
        Self {
            shared,
            workers,
            queue_depth: config.queue_depth,
        }
    }

    /// Extends the budget by `n` batches (controller → reader master call:
    /// "read this many batches until the next checkpoint", §4.1).
    pub fn extend_budget(&self, n: u64) {
        let mut inner = self.shared.state.lock();
        inner.budget_end += n;
        drop(inner);
        self.shared.cond.notify_all();
    }

    /// Warms the reorder buffer: lets workers generate up to `n` batches
    /// *ahead* of the delivery budget (still capped by the queue depth)
    /// without extending the budget itself. Delivery stays exactly
    /// budget-gated, so the §4.1 gap-free guarantee is untouched — preloaded
    /// batches are just a warm cache that the next `extend_budget` drains
    /// instantly.
    ///
    /// The recovery path calls this while a restore's fetch/decode is still
    /// running, so training resumes against a full queue instead of cold
    /// workers (reader warm-up overlaps the restore instead of adding to
    /// time-to-resume).
    pub fn preload(&self, n: u64) {
        let mut inner = self.shared.state.lock();
        inner.preload_end = inner.preload_end.max(inner.next_to_emit + n);
        drop(inner);
        self.shared.cond.notify_all();
    }

    /// Delivers the next batch in order. Blocks while workers catch up.
    ///
    /// Panics if called beyond the budget — the trainer driving past the
    /// budget is a protocol violation that would reintroduce the
    /// reader/trainer gap, so it fails loudly.
    pub fn next_batch(&self) -> Batch {
        let mut inner = self.shared.state.lock();
        assert!(
            inner.next_to_emit < inner.budget_end,
            "next_batch() called beyond the checkpoint budget"
        );
        loop {
            let want = inner.next_to_emit;
            if let Some(batch) = inner.ready.remove(&want) {
                inner.next_to_emit += 1;
                drop(inner);
                // Space freed: wake a worker.
                self.shared.cond.notify_all();
                return batch;
            }
            self.shared.cond.wait(&mut inner);
        }
    }

    /// Waits until every budgeted batch has been consumed, then returns the
    /// reader state. This is the state-collection step of a checkpoint: by
    /// construction there are no in-flight batches.
    pub fn collect_state(&self) -> ReaderState {
        let mut inner = self.shared.state.lock();
        while inner.next_to_emit < inner.budget_end {
            self.shared.cond.wait(&mut inner);
        }
        // Preloaded batches beyond the budget may legitimately remain
        // buffered; nothing *within* the budget may.
        debug_assert!(
            inner.ready.keys().all(|k| *k >= inner.budget_end),
            "drained reader retains budgeted batches"
        );
        ReaderState::at(inner.next_to_emit)
    }

    /// Batches remaining in the current budget (not yet consumed).
    pub fn remaining_budget(&self) -> u64 {
        let inner = self.shared.state.lock();
        inner.budget_end - inner.next_to_emit
    }

    /// Number of generated-but-unconsumed batches (in-flight).
    pub fn in_flight(&self) -> usize {
        self.shared.state.lock().ready.len()
    }

    /// Configured queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }
}

impl Drop for ReaderMaster {
    fn drop(&mut self) {
        {
            let mut inner = self.shared.state.lock();
            inner.shutdown = true;
        }
        self.shared.cond.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, dataset: &SyntheticDataset, queue_depth: usize) {
    loop {
        // Claim the next index, respecting budget and queue depth.
        let idx = {
            let mut inner = shared.state.lock();
            loop {
                if inner.shutdown {
                    return;
                }
                let within_budget =
                    inner.next_to_generate < inner.budget_end.max(inner.preload_end);
                let within_depth =
                    inner.next_to_generate - inner.next_to_emit < queue_depth as u64;
                if within_budget && within_depth {
                    let idx = inner.next_to_generate;
                    inner.next_to_generate += 1;
                    break idx;
                }
                shared.cond.wait(&mut inner);
            }
        };
        // Generate outside the lock (the expensive part).
        let batch = dataset.batch(idx);
        {
            let mut inner = shared.state.lock();
            inner.ready.insert(idx, batch);
        }
        shared.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnr_workload::DatasetSpec;

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::new(DatasetSpec::tiny(11))
    }

    #[test]
    fn delivers_batches_in_order() {
        let reader = ReaderMaster::new(
            dataset(),
            ReaderConfig {
                workers: 4,
                queue_depth: 4,
            },
        );
        reader.extend_budget(20);
        for i in 0..20u64 {
            let b = reader.next_batch();
            assert_eq!(b.index, i, "out-of-order delivery");
        }
    }

    #[test]
    fn batches_match_direct_generation() {
        let ds = dataset();
        let reader = ReaderMaster::new(ds.clone(), ReaderConfig::default());
        reader.extend_budget(5);
        for i in 0..5u64 {
            assert_eq!(reader.next_batch(), ds.batch(i));
        }
    }

    #[test]
    fn collect_state_after_drain() {
        let reader = ReaderMaster::new(dataset(), ReaderConfig::default());
        reader.extend_budget(7);
        for _ in 0..7 {
            reader.next_batch();
        }
        let state = reader.collect_state();
        assert_eq!(state.next_batch, 7);
        assert_eq!(reader.in_flight(), 0, "no in-flight batches at checkpoint");
        assert_eq!(reader.remaining_budget(), 0);
    }

    #[test]
    fn resume_from_state_continues_stream() {
        let ds = dataset();
        // First run: consume 6 batches, checkpoint.
        let state = {
            let reader = ReaderMaster::new(ds.clone(), ReaderConfig::default());
            reader.extend_budget(6);
            for _ in 0..6 {
                reader.next_batch();
            }
            reader.collect_state()
        };
        // Second run: restore, read 3 more — identical to direct batches 6..9.
        let reader = ReaderMaster::from_state(ds.clone(), state, ReaderConfig::default());
        reader.extend_budget(3);
        for i in 6..9u64 {
            assert_eq!(reader.next_batch(), ds.batch(i));
        }
    }

    #[test]
    #[should_panic(expected = "beyond the checkpoint budget")]
    fn overconsuming_budget_panics() {
        let reader = ReaderMaster::new(dataset(), ReaderConfig::default());
        reader.extend_budget(1);
        reader.next_batch();
        reader.next_batch(); // one too many
    }

    #[test]
    fn workers_respect_queue_depth() {
        let reader = ReaderMaster::new(
            dataset(),
            ReaderConfig {
                workers: 4,
                queue_depth: 3,
            },
        );
        reader.extend_budget(100);
        // Give workers time to run ahead as far as they can.
        std::thread::sleep(std::time::Duration::from_millis(100));
        assert!(
            reader.in_flight() <= 3,
            "workers overran queue depth: {}",
            reader.in_flight()
        );
        // Drain everything to let Drop shut down cleanly.
        for _ in 0..100 {
            reader.next_batch();
        }
    }

    #[test]
    fn budget_extension_resumes_stalled_workers() {
        let reader = ReaderMaster::new(dataset(), ReaderConfig::default());
        reader.extend_budget(2);
        reader.next_batch();
        reader.next_batch();
        let state = reader.collect_state();
        assert_eq!(state.next_batch, 2);
        // Extend and keep going.
        reader.extend_budget(2);
        assert_eq!(reader.next_batch().index, 2);
        assert_eq!(reader.next_batch().index, 3);
    }

    #[test]
    fn shutdown_on_drop_does_not_hang() {
        let reader = ReaderMaster::new(
            dataset(),
            ReaderConfig {
                workers: 4,
                queue_depth: 2,
            },
        );
        reader.extend_budget(100);
        reader.next_batch();
        drop(reader); // workers blocked on depth/budget must exit
    }

    #[test]
    fn preload_warms_the_queue_without_extending_the_budget() {
        let reader = ReaderMaster::new(
            dataset(),
            ReaderConfig {
                workers: 2,
                queue_depth: 8,
            },
        );
        reader.preload(4);
        // Workers generate the preloaded batches...
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while reader.in_flight() < 4 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(reader.in_flight(), 4, "preload generated ahead");
        // ...but delivery is still budget-gated: the budget is empty, so the
        // reader state is collectable immediately and reports no progress.
        assert_eq!(reader.remaining_budget(), 0);
        assert_eq!(reader.collect_state().next_batch, 0);
        // Extending the budget drains the warm queue with correct ordering.
        reader.extend_budget(4);
        for i in 0..4u64 {
            assert_eq!(reader.next_batch().index, i);
        }
        assert_eq!(reader.collect_state().next_batch, 4);
    }

    #[test]
    #[should_panic(expected = "beyond the checkpoint budget")]
    fn preload_does_not_permit_overconsumption() {
        let reader = ReaderMaster::new(dataset(), ReaderConfig::default());
        reader.preload(3);
        reader.next_batch(); // budget is zero: still a protocol violation
    }

    #[test]
    fn preload_respects_queue_depth() {
        let reader = ReaderMaster::new(
            dataset(),
            ReaderConfig {
                workers: 4,
                queue_depth: 2,
            },
        );
        reader.preload(50);
        std::thread::sleep(std::time::Duration::from_millis(100));
        assert!(reader.in_flight() <= 2, "depth caps preload");
        // Drain so Drop shuts down cleanly.
        reader.extend_budget(50);
        for _ in 0..50 {
            reader.next_batch();
        }
    }

    #[test]
    fn many_interval_cycles_stay_consistent() {
        // Simulates the paper's steady state: N batches, checkpoint, repeat.
        let ds = dataset();
        let reader = ReaderMaster::new(ds.clone(), ReaderConfig::default());
        let mut expected = 0u64;
        for _interval in 0..5 {
            reader.extend_budget(10);
            for _ in 0..10 {
                let b = reader.next_batch();
                assert_eq!(b.index, expected);
                expected += 1;
            }
            let st = reader.collect_state();
            assert_eq!(st.next_batch, expected);
        }
    }
}
