//! The distributed reader tier.
//!
//! In the paper's training pipeline (§2.2), a separate cluster of reader
//! nodes feeds trainers with batches at high throughput. Checkpointing
//! introduces a consistency problem (§4.1): batches can be *in flight*
//! between reader and trainer, so a checkpoint of "reader position" and
//! "trainer position" taken naively would disagree. Check-N-Run's fix is the
//! **batch budget protocol**: the controller tells the reader master exactly
//! how many batches to produce before the next checkpoint; the reader
//! produces exactly that many and stops; when the trainer has consumed them
//! all, reader state and trainer state are consistent by construction.
//!
//! This crate implements that protocol with real threads:
//!
//! * [`master::ReaderMaster`] — owns worker threads that generate batches in
//!   parallel, a reorder buffer that delivers them **in index order**
//!   (synchronous training requires a deterministic batch sequence), and the
//!   budget gate.
//! * [`state::ReaderState`] — the serializable reader position; restoring it
//!   and re-reading yields the identical batch stream (verified by tests,
//!   possible because `cnr-workload` datasets are deterministic).

pub mod master;
pub mod state;

pub use master::{ReaderConfig, ReaderMaster};
pub use state::ReaderState;
