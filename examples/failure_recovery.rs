//! Fleet-level failure recovery: why checkpoint frequency matters (§3.1)
//! and what Check-N-Run's bandwidth savings buy.
//!
//! Simulates a month of a training fleet under the paper-calibrated failure
//! distribution, sweeping the checkpoint interval. Shorter intervals waste
//! less re-training time — but are only affordable if each checkpoint is
//! cheap, which is exactly what incremental+quantized checkpoints provide.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```

use check_n_run::cluster::failure::FailureModel;
use check_n_run::cluster::job::TrainingJob;
use check_n_run::cluster::recovery::{account, expected_waste_per_failure};
use check_n_run::cluster::scheduler::{ClusterFleet, Scheduler};
use check_n_run::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const HOUR: Duration = Duration::from_secs(3600);
const MIN: Duration = Duration::from_secs(60);

fn main() {
    let model = FailureModel::paper_calibrated();

    // Part 1: per-job accounting. One 72-hour training job, failures drawn
    // from the calibrated distribution, intervals from 5 minutes to 4 hours.
    println!("# per-job recovery accounting (72h job, paper-calibrated failures)");
    println!("interval_min,failures,wasted_hours,restore_hours,overhead_pct");
    let mut rng = StdRng::seed_from_u64(17);
    let offsets: Vec<Duration> = (0..64)
        .map(|_| model.sample(&mut rng).unwrap().time_to_failure)
        .collect();
    for interval in [5 * MIN, 15 * MIN, 30 * MIN, 2 * HOUR, 4 * HOUR] {
        let acc = account(72 * HOUR, &offsets, interval, 5 * MIN);
        println!(
            "{},{},{:.2},{:.2},{:.2}",
            interval.as_secs() / 60,
            acc.failures,
            acc.wasted_work.as_secs_f64() / 3600.0,
            acc.restore_time.as_secs_f64() / 3600.0,
            acc.overhead_fraction() * 100.0
        );
    }
    println!(
        "# expected waste/failure at 30min interval: {} min (interval/2)",
        expected_waste_per_failure(30 * MIN).as_secs() / 60
    );
    println!();

    // Part 2: fleet simulation. The paper's fleet shape (21 clusters x 16
    // nodes), a mixed batch of jobs, one simulated week.
    println!("# fleet simulation: 21 clusters x 16 nodes, one week");
    let mut scheduler = Scheduler::new(ClusterFleet::paper_fleet(), model.clone(), 99)
        .with_checkpoint_interval(Some(30 * MIN));
    let jobs: Vec<TrainingJob> = (0..48)
        .map(|i| {
            TrainingJob::new(
                i,
                if i % 4 == 0 { 16 } else { 8 },
                Duration::from_secs(3600 * (12 + (i % 5) * 12)),
                Duration::from_secs(1800 * i),
            )
        })
        .collect();
    let outcomes = scheduler.run(&jobs, Duration::from_secs(7 * 24 * 3600));

    let completed = outcomes.iter().filter(|o| o.completed_at.is_some()).count();
    let failures: usize = outcomes.iter().map(|o| o.failures.len()).sum();
    let wasted: Duration = outcomes.iter().map(|o| o.wasted_work).sum();
    let useful: Duration = outcomes.iter().map(|o| o.work_done).sum();
    println!("jobs completed: {completed}/{}", outcomes.len());
    println!("total failures: {failures}");
    println!(
        "useful work: {:.0} node-hours, wasted re-training: {:.1} node-hours ({:.2}%)",
        useful.as_secs_f64() / 3600.0,
        wasted.as_secs_f64() / 3600.0,
        100.0 * wasted.as_secs_f64() / (useful + wasted).as_secs_f64().max(1e-9)
    );

    // Part 3: the same fleet without checkpointing — the paper's motivation
    // that long jobs "may never complete their task".
    let mut no_ckpt = Scheduler::new(ClusterFleet::paper_fleet(), model, 99)
        .with_checkpoint_interval(None);
    let outcomes2 = no_ckpt.run(&jobs, Duration::from_secs(7 * 24 * 3600));
    let completed2 = outcomes2.iter().filter(|o| o.completed_at.is_some()).count();
    let wasted2: Duration = outcomes2.iter().map(|o| o.wasted_work).sum();
    println!(
        "without checkpoints: {completed2}/{} jobs completed, {:.0} node-hours wasted",
        outcomes2.len(),
        wasted2.as_secs_f64() / 3600.0
    );
    println!();

    // Part 4: recovery-latency quickstart — the sharded restore pipeline.
    // One job, a constrained remote, and the same failure restored over
    // 1 vs 8 reader hosts: the fetch/decode/merge stages shrink
    // near-linearly with hosts because each fetches its share of the
    // checkpoint chain over its own downlink. drain_wait is the time the
    // failure spent waiting for the in-flight upload backlog to settle
    // (§4.4: the checkpoint is only valid once durable) and does not
    // scale with reader hosts.
    println!("# recovery latency: sharded restore, 1 vs 8 reader hosts");
    println!("reader_hosts,drain_wait_ms,fetch_ms,decode_ms,merge_ms,time_to_resume_ms,cache_hit_rate");
    for hosts in [1usize, 8] {
        let spec = DatasetSpec::tiny(99);
        let model_cfg = ModelConfig::for_dataset(&spec, 16);
        let mut engine = EngineBuilder::new(spec, model_cfg)
            .checkpoint_every_batches(50)
            .cluster_shape(1, 2)
            .checkpoint_config(CheckpointConfig {
                interval_batches: 50,
                chunk_rows: 64,
                ..CheckpointConfig::default()
            })
            .writer_hosts(hosts)
            .reader_hosts(hosts)
            .remote_config(RemoteConfig {
                bandwidth_bytes_per_sec: 512.0 * 1024.0, // constrained uplinks
                base_latency: Duration::from_micros(200),
                replication: 1,
                channels: hosts as u32,
            })
            .build()
            .expect("engine construction");
        engine.train_batches(50).expect("training");
        engine.simulate_failure_and_restore().expect("restore");
        let resume = &engine.stats().resumes[0];
        println!(
            "{},{:.2},{:.2},{:.2},{:.2},{:.2},{}",
            resume.reader_hosts,
            resume.drain_wait.as_secs_f64() * 1000.0,
            resume.fetch.as_secs_f64() * 1000.0,
            resume.decode.as_secs_f64() * 1000.0,
            resume.merge.as_secs_f64() * 1000.0,
            resume.time_to_resume.as_secs_f64() * 1000.0,
            resume
                .cache_hit_rate
                .map_or("n/a".to_string(), |r| format!("{r:.2}")),
        );
    }
    println!();

    // Part 5: the per-iteration delta WAL. Same job, same failure point —
    // without the WAL a crash rolls back to the last interval checkpoint
    // and re-trains the whole tail; with it, restore replays the logged
    // per-iteration deltas and the loss collapses to at most the one
    // unsynced iteration.
    println!("# delta WAL: lost work at the same failure point, with and without");
    println!("wal,restore_point,replayed_iterations,lost_iterations,resume_iteration");
    for wal in [false, true] {
        let spec = DatasetSpec::tiny(99);
        let model_cfg = ModelConfig::for_dataset(&spec, 16);
        let mut b = EngineBuilder::new(spec, model_cfg)
            .checkpoint_every_batches(50)
            .cluster_shape(1, 2);
        if wal {
            b = b.delta_wal(DeltaWalConfig::default());
        }
        let mut engine = b.build().expect("engine construction");
        // Checkpoint at 50, then 20 more iterations that only the WAL has.
        engine.train_batches(70).expect("training");
        engine.simulate_failure_and_restore().expect("restore");
        let resume = engine.stats().resumes.last().expect("resume");
        println!(
            "{},{:?},{},{},{}",
            wal,
            resume.restore_point,
            resume.wal_replayed_iterations,
            resume.lost_iterations,
            engine.trainer().model().iteration(),
        );
    }
    println!();

    // Part 6: lazy (CPR-style) restore — train before the restore
    // finishes. Same failure, two restore modes over a slow downlink:
    // eager waits for every embedding row; lazy resumes once the dense
    // layers plus the hottest 5% of rows are applied, faults cold rows
    // the next batches touch in on demand, and drains the rest in the
    // background — converging to the identical model.
    println!("# lazy restore: first-batch vs full-resume latency");
    println!("mode,first_batch_ms,full_resume_ms,pending_rows_at_first_batch,fault_in_fetches");
    for lazy in [false, true] {
        let spec = DatasetSpec::tiny(99);
        let model_cfg = ModelConfig::for_dataset(&spec, 16);
        let mut b = EngineBuilder::new(spec, model_cfg)
            .checkpoint_every_batches(5)
            .cluster_shape(1, 2)
            .writer_hosts(4)
            .reader_hosts(2)
            .remote_config(RemoteConfig {
                bandwidth_bytes_per_sec: 64.0 * 1024.0,
                base_latency: Duration::from_micros(100),
                replication: 1,
                channels: 2,
            });
        if lazy {
            b = b.lazy_restore(0.05); // dense + hottest 5% before first batch
        }
        let mut engine = b.build().expect("engine construction");
        // Fail 3 batches past the checkpoint at 10, so the tracker's
        // recent working set leaves a genuine cold tail to defer.
        engine.train_batches(13).expect("training");
        engine.simulate_failure_and_restore().expect("restore");
        let pending = engine.pending_lazy().map_or(0, |l| l.pending_rows());
        // Train through the drain window (cold rows fault in on demand),
        // then finish the background drain.
        engine.train_batches(3).expect("training past restore");
        engine.drain_lazy_restore().expect("drain");
        let resume = engine.stats().resumes.last().expect("resume");
        println!(
            "{},{:.2},{:.2},{},{}",
            if lazy { "lazy" } else { "eager" },
            resume.time_to_first_batch.as_secs_f64() * 1000.0,
            resume.time_to_resume.as_secs_f64() * 1000.0,
            pending,
            resume.fault_in_fetches,
        );
    }
}
