//! Policy explorer: compare the three incremental policies and quantization
//! modes on one workload — a miniature of the paper's Figures 15–17.
//!
//! ```text
//! cargo run --release --example policy_explorer
//! ```

use check_n_run::core::{CheckpointConfig, EngineBuilder, PolicyKind, QuantMode};
use check_n_run::model::ModelConfig;
use check_n_run::quant::QuantScheme;
use check_n_run::workload::{DatasetSpec, TableAccessSpec};

fn spec() -> DatasetSpec {
    DatasetSpec {
        seed: 11,
        batch_size: 128,
        dense_dim: 4,
        tables: vec![
            TableAccessSpec::new(30_000, 1, 0.85),
            TableAccessSpec::new(15_000, 1, 0.8),
        ],
        concept_seed: None,
    }
}

fn run(policy: PolicyKind, quant: QuantMode, label: &str) {
    let s = spec();
    let model_cfg = ModelConfig::for_dataset(&s, 16);
    let mut engine = EngineBuilder::new(s, model_cfg)
        .checkpoint_config(CheckpointConfig {
            interval_batches: 100,
            policy,
            quant,
            ..CheckpointConfig::default()
        })
        .job_name(label)
        .build()
        .expect("engine");
    engine.train_batches(10 * 100).expect("training");

    let stats = engine.stats();
    let kinds: String = stats
        .intervals
        .iter()
        .map(|i| match i.kind {
            check_n_run::core::CheckpointKind::Full => 'F',
            check_n_run::core::CheckpointKind::Incremental => 'i',
        })
        .collect();
    println!(
        "{label:<28} kinds={kinds} mean_size={:>5.1}% peak_capacity={:>6.1}% bw_reduction={:>5.1}x cap_reduction={:>4.1}x",
        stats.mean_stored_fraction() * 100.0,
        stats.peak_capacity_fraction() * 100.0,
        stats.bandwidth_reduction_vs_full(),
        stats.capacity_reduction_vs_full(),
    );
}

fn main() {
    println!("# 10 intervals of 100 batches; reductions vs full-fp32-every-interval\n");
    println!("-- incremental policies (no quantization), Figures 15/16 in miniature --");
    run(PolicyKind::FullOnly, QuantMode::None, "full-only");
    run(PolicyKind::OneShot, QuantMode::None, "one-shot");
    run(PolicyKind::Consecutive, QuantMode::None, "consecutive");
    run(PolicyKind::Intermittent, QuantMode::None, "intermittent");

    println!("\n-- quantization on top of intermittent, Figure 17 in miniature --");
    for (bits, expected) in [(2u8, 1u32), (3, 3), (4, 10), (8, 30)] {
        run(
            PolicyKind::Intermittent,
            QuantMode::Dynamic {
                expected_restores: expected,
            },
            &format!("intermittent+{bits}bit(L={expected})"),
        );
    }

    println!("\n-- fixed schemes for reference --");
    run(
        PolicyKind::Intermittent,
        QuantMode::Fixed(QuantScheme::Fp16),
        "intermittent+fp16",
    );
    run(
        PolicyKind::Intermittent,
        QuantMode::Fixed(QuantScheme::KMeans { bits: 4 }),
        "intermittent+kmeans4",
    );
}
