//! Quickstart: train a recommendation model with Check-N-Run checkpointing,
//! kill it, and resume exactly where it left off.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use check_n_run::core::{EngineBuilder, PolicyKind, QuantMode};
use check_n_run::model::ModelConfig;
use check_n_run::workload::DatasetSpec;

fn main() {
    // 1. A synthetic CTR dataset and a DLRM-lite model sized to match it.
    let spec = DatasetSpec::medium(42);
    let model_cfg = ModelConfig::for_dataset(&spec, 16);
    println!(
        "model: {} embedding rows across {} tables ({} MB fp32)",
        model_cfg.embedding_params() / 16,
        model_cfg.tables.len(),
        model_cfg.embedding_bytes() / (1024 * 1024)
    );

    // 2. An engine with intermittent incremental checkpoints, quantized at a
    //    bit-width chosen for one expected restore (=> 2-bit, per §6.2.1).
    let mut engine = EngineBuilder::new(spec, model_cfg)
        .checkpoint_every_batches(200)
        .policy(PolicyKind::Intermittent)
        .quantization(QuantMode::Dynamic {
            expected_restores: 1,
        })
        .job_name("quickstart")
        .build()
        .expect("engine construction");
    println!("first checkpoint scheme: {}", engine.current_scheme());

    // 3. Train through five checkpoint intervals.
    engine.train_batches(1000).expect("training");
    let before = engine.evaluate(50_000, 50_040);
    println!(
        "after 1000 batches: logloss {:.4}, {} checkpoints, {} KB written",
        before.logloss,
        engine.stats().intervals.len(),
        engine.store().metrics().snapshot().bytes_put / 1024
    );

    // 4. Simulate a crash: everything in memory is lost, the engine restores
    //    from the newest valid checkpoint (baseline + delta, de-quantized).
    engine.train_batches(150).expect("training"); // progress that will be lost
    let report = engine
        .simulate_failure_and_restore()
        .expect("restore from checkpoint");
    println!(
        "crash! restored chain {:?} at iteration {} ({} KB read)",
        report.chain,
        report.state.iteration,
        report.bytes_read / 1024
    );

    // 5. Training continues from the checkpoint; the reader resumes at the
    //    exact batch recorded in the manifest (no gap, no duplicates).
    engine.train_batches(200).expect("training");
    let after = engine.evaluate(50_000, 50_040);
    println!(
        "resumed to iteration {}: logloss {:.4} (stall overhead {:.4}%)",
        engine.trainer().model().iteration(),
        after.logloss,
        engine.trainer().stall_fraction() * 100.0
    );

    // 6. Storage accounting: what checkpointing actually cost.
    let stats = engine.stats();
    println!(
        "mean checkpoint size: {:.1}% of model; bandwidth reduction vs naive full-fp32: {:.1}x",
        stats.mean_stored_fraction() * 100.0,
        stats.bandwidth_reduction_vs_full()
    );
}
