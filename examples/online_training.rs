//! Online training: publish consecutive incremental checkpoints to keep an
//! inference replica fresh (§5.1: "consecutive increment checkpoints are
//! useful for use cases such as online training, where checkpoints are
//! directly applied to an already-trained model in inference").
//!
//! The trainer produces a consecutive delta per interval; the "inference
//! tier" applies each delta to its replica as it arrives and never reloads
//! the full model. The example measures the staleness gap: held-out logloss
//! of the fresh replica vs a replica frozen at the initial full checkpoint.
//!
//! ```text
//! cargo run --release --example online_training
//! ```

use check_n_run::core::restore::restore;
use check_n_run::core::{EngineBuilder, PolicyKind, QuantMode};
use check_n_run::model::{DlrmModel, ModelConfig};
use check_n_run::quant::QuantScheme;
use check_n_run::trainer::evaluate;
use check_n_run::workload::DatasetSpec;

fn main() {
    let spec = DatasetSpec::medium(7);
    let model_cfg = ModelConfig::for_dataset(&spec, 16);
    let mut engine = EngineBuilder::new(spec.clone(), model_cfg.clone())
        .checkpoint_config(check_n_run::core::CheckpointConfig {
            interval_batches: 150,
            policy: PolicyKind::Consecutive,
            quant: QuantMode::Fixed(QuantScheme::Asymmetric { bits: 8 }),
            // Online training keeps the whole chain: the inference tier may
            // join at any point and needs every delta.
            retained_chains: usize::MAX / 2,
            ..Default::default()
        })
        .job_name("online")
        .build()
        .expect("engine");

    // The inference replica bootstraps empty; it syncs from storage after
    // the first published checkpoint. The stale replica freezes at the first
    // publication to show what freshness is worth.
    let mut inference: Option<DlrmModel>;
    let mut stale: Option<DlrmModel> = None;

    println!("interval,published,fresh_logloss,stale_logloss,freshness_gain");
    for interval in 0..8u64 {
        engine.train_batches(150).expect("training");
        let latest = engine.controller().latest().expect("checkpoint exists");

        // The inference tier pulls the latest state. With the consecutive
        // policy this restore walks the delta chain — in a production system
        // the replica would apply only the newest delta in place; the chain
        // restore here produces the identical state.
        let report = restore(
            engine.store().as_ref() as &dyn check_n_run::storage::ObjectStore,
            "online",
            latest,
            &model_cfg,
        )
        .expect("inference sync");
        let mut fresh = DlrmModel::new(model_cfg.clone());
        report.state.restore(&mut fresh);
        if stale.is_none() {
            stale = Some(fresh.clone()); // frozen at the first publication
        }
        inference = Some(fresh);

        let ds = engine.dataset();
        let fresh_ll = evaluate(inference.as_ref().unwrap(), ds, 60_000, 60_030).logloss;
        let stale_ll = evaluate(stale.as_ref().unwrap(), ds, 60_000, 60_030).logloss;
        println!(
            "{interval},{latest},{fresh_ll:.4},{stale_ll:.4},{:.4}",
            stale_ll - fresh_ll
        );
    }

    let metrics = engine.store().metrics().snapshot();
    println!(
        "# published {} checkpoints, {} KB total ({} KB/interval average)",
        engine.stats().intervals.len(),
        metrics.bytes_put / 1024,
        metrics.bytes_put / 1024 / engine.stats().intervals.len() as u64
    );
}
