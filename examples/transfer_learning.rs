//! Transfer learning from an intermediate checkpoint (§1: "Checkpoints are
//! also used for performing transfer learning, where an intermediate model
//! state is used as a seed, which is then trained for a different goal").
//!
//! A model trains on task A and checkpoints (without reader state — the
//! target job reads its own data). A second job seeds its embedding tables
//! from that checkpoint and trains on task B (same categorical universe,
//! different label distribution). The example measures the head start the
//! warm embeddings provide over a cold start.
//!
//! ```text
//! cargo run --release --example transfer_learning
//! ```

use check_n_run::core::restore::restore;
use check_n_run::core::{EngineBuilder, PolicyKind, QuantMode};
use check_n_run::model::{DlrmModel, ModelConfig};
use check_n_run::quant::QuantScheme;
use check_n_run::trainer::evaluate;
use check_n_run::workload::{DatasetSpec, SyntheticDataset};

fn main() {
    // Task A: train and checkpoint (8-bit quantized; transfer tolerates it).
    let task_a = DatasetSpec::medium(100);
    let model_cfg = ModelConfig::for_dataset(&task_a, 16);
    let mut engine = EngineBuilder::new(task_a, model_cfg.clone())
        .checkpoint_every_batches(300)
        .policy(PolicyKind::OneShot)
        .quantization(QuantMode::Fixed(QuantScheme::Asymmetric { bits: 8 }))
        .job_name("task-a")
        .build()
        .expect("engine");
    engine.train_batches(900).expect("task A training");
    let ckpt = engine.controller().latest().expect("checkpoint");
    println!("task A trained 900 batches, seed checkpoint: {ckpt}");

    // Task B: same sparse universe and the same underlying concept (the
    // hidden click model), but a different data distribution — a domain
    // shift, e.g. launching the model on a new surface. Sharing the concept
    // is what makes the task-A embeddings worth transferring.
    let mut task_b = DatasetSpec::medium(200);
    task_b.tables = engine.dataset().spec().tables.clone();
    task_b.concept_seed = Some(100);
    let ds_b = SyntheticDataset::new(task_b.clone());
    let cfg_b = ModelConfig::for_dataset(&task_b, 16);

    // Warm start: seed embeddings from the task-A checkpoint.
    let report = restore(
        engine.store().as_ref() as &dyn check_n_run::storage::ObjectStore,
        "task-a",
        ckpt,
        &model_cfg,
    )
    .expect("seed restore");
    let mut warm = DlrmModel::new(cfg_b.clone());
    // Transfer only the embedding tables; MLPs retrain from scratch (the
    // "different goal" gets its own dense head).
    for (table, snap) in warm.tables_mut().iter_mut().zip(&report.state.tables) {
        table.data_mut().copy_from_slice(&snap.data);
    }
    let mut cold = DlrmModel::new(cfg_b);

    println!("\nbatches,warm_logloss,cold_logloss,warm_advantage");
    let mut trained = 0u64;
    for round in 0..6u64 {
        let eval_warm = evaluate(&warm, &ds_b, 70_000, 70_030);
        let eval_cold = evaluate(&cold, &ds_b, 70_000, 70_030);
        println!(
            "{trained},{:.4},{:.4},{:+.4}",
            eval_warm.logloss,
            eval_cold.logloss,
            eval_cold.logloss - eval_warm.logloss
        );
        if round == 5 {
            break;
        }
        for i in trained..trained + 100 {
            warm.train_batch(&ds_b.batch(i), |_, _| {});
            cold.train_batch(&ds_b.batch(i), |_, _| {});
        }
        trained += 100;
    }
    println!("\n# positive warm_advantage = the checkpoint seed is paying off");
}
