//! Executes the crate-level quickstart from `src/lib.rs` line for line.
//!
//! The doc example is `no_run` (500 training batches is too slow for a doc
//! test), so this smoke test is what actually guards it against rot: if the
//! builder API or the quickstart flow drifts, this fails even though the
//! doc example only ever gets compile-checked.

use check_n_run::prelude::*;

#[test]
fn quickstart_doc_example_runs() {
    // Keep in sync with the `Quickstart` example in src/lib.rs.
    let spec = DatasetSpec::medium(42);
    let model_cfg = ModelConfig::for_dataset(&spec, 16);
    let mut engine = EngineBuilder::new(spec, model_cfg)
        .checkpoint_every_batches(100)
        .policy(PolicyKind::Intermittent)
        .quantization(QuantMode::Dynamic {
            expected_restores: 1,
        })
        .build()
        .expect("engine construction");
    engine.train_batches(500).expect("training");

    // The quickstart promises a working checkpointing engine, not just a
    // training loop: 500 batches at checkpoint_every_batches(100) must have
    // produced checkpoints.
    let stats = engine.stats();
    assert!(
        stats.intervals.len() >= 4,
        "expected >= 4 checkpoints after 500 batches at interval 100, got {}",
        stats.intervals.len()
    );
}
