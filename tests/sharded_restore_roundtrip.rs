//! Sharded *restore* path invariants, property-tested end to end: for
//! random models and configurations, the parallel `cnr_core::read`
//! pipeline reconstructs exactly the state the serial restore does —
//! across 1/2/4/7 reader hosts and 1–4 decode worker threads, including
//! row counts that don't divide evenly and checkpoints written by a
//! different number of writer hosts than are restoring. The decode-worker
//! dimension is the threaded-decode acceptance property: multi-threaded
//! dequantization must be bit-identical to the serial path.

use check_n_run::cluster::SimClock;
use check_n_run::core::config::CheckpointConfig;
use check_n_run::core::manifest::{CheckpointId, CheckpointKind};
use check_n_run::core::policy::{Decision, TrackerAction};
use check_n_run::core::read::{restore_sharded, RestoreOptions};
use check_n_run::core::restore::restore;
use check_n_run::core::snapshot::SnapshotTaker;
use check_n_run::core::write::CheckpointWriter;
use check_n_run::core::TrainingSnapshot;
use check_n_run::model::{DlrmModel, ModelConfig, ShardPlan};
use check_n_run::quant::QuantScheme;
use check_n_run::reader::ReaderState;
use check_n_run::storage::{InMemoryStore, RemoteConfig, SimulatedRemoteStore};
use check_n_run::trainer::{Trainer, TrainerConfig};
use check_n_run::workload::{DatasetSpec, SyntheticDataset, TableAccessSpec};
use proptest::prelude::*;
use std::time::Duration;

/// Trains a small random model and snapshots it.
fn snapshot_for(
    seed: u64,
    rows_a: usize,
    rows_b: usize,
    dim: usize,
    batches: u64,
    kind: CheckpointKind,
) -> (ModelConfig, TrainingSnapshot) {
    let spec = DatasetSpec {
        seed,
        batch_size: 16,
        dense_dim: 4,
        tables: vec![
            TableAccessSpec::new(rows_a as u64, 2, 1.0),
            TableAccessSpec::new(rows_b as u64, 1, 0.9),
        ],
        concept_seed: None,
    };
    let ds = SyntheticDataset::new(spec.clone());
    let model_cfg = ModelConfig::for_dataset(&spec, dim);
    let model = DlrmModel::new(model_cfg.clone());
    let mut trainer = Trainer::new(model, SimClock::new(), TrainerConfig::default());
    for i in 0..batches {
        trainer.train_one(&ds.batch(i));
    }
    let decision = match kind {
        CheckpointKind::Full => Decision {
            kind,
            tracker: TrackerAction::SnapshotReset,
        },
        CheckpointKind::Incremental => Decision {
            kind,
            tracker: TrackerAction::SnapshotKeep,
        },
    };
    let snap = SnapshotTaker::new(ShardPlan::balanced(&model_cfg, 1, 2)).take(
        &mut trainer,
        ReaderState::at(batches),
        decision,
        &CheckpointConfig::default(),
    );
    (model_cfg, snap)
}

/// Writes `snap` (with a single-shard full baseline first when it is
/// incremental, so the chain restores) over `writer_hosts`.
fn write_chain(
    store: &InMemoryStore,
    model_cfg: &ModelConfig,
    snap: &TrainingSnapshot,
    writer_hosts: usize,
    chunk_rows: usize,
) -> CheckpointId {
    let writer = CheckpointWriter::new(store, "job");
    let cfg = CheckpointConfig {
        chunk_rows,
        writer_hosts,
        ..CheckpointConfig::default()
    };
    let (id, base) = if snap.kind == CheckpointKind::Incremental {
        let mut full = snap.clone();
        full.kind = CheckpointKind::Full;
        full.delta = check_n_run::tracking::TrackerSnapshot::full(&model_cfg.row_counts());
        let base_cfg = CheckpointConfig {
            chunk_rows,
            writer_hosts: 1,
            ..CheckpointConfig::default()
        };
        writer
            .write(&full, CheckpointId(0), None, QuantScheme::Fp32, &base_cfg)
            .expect("baseline write");
        (CheckpointId(1), Some(CheckpointId(0)))
    } else {
        (CheckpointId(0), None)
    };
    writer
        .write(snap, id, base, QuantScheme::Fp32, &cfg)
        .expect("write");
    id
}

proptest! {
    /// Sharded restore equals the serial path bit for bit, for random
    /// geometries (including non-divisible row counts), chunk sizes,
    /// writer shard counts, and 1/2/4/7 reader hosts.
    #[test]
    fn sharded_restore_is_bit_identical(
        seed in any::<u64>(),
        rows_a in 8usize..300,
        rows_b in 1usize..120,
        dim_pow in 0u32..4,
        batches in 1u64..4,
        chunk_rows in 1usize..80,
        writer_hosts in 1usize..6,
        decode_workers in 1usize..5,
        full in 0u8..2,
    ) {
        let dim = 1usize << dim_pow;
        let kind = if full == 1 { CheckpointKind::Full } else { CheckpointKind::Incremental };
        let (model_cfg, snap) = snapshot_for(seed, rows_a, rows_b, dim, batches, kind);
        let store = InMemoryStore::new();
        let id = write_chain(&store, &model_cfg, &snap, writer_hosts, chunk_rows);
        let serial = restore(&store, "job", id, &model_cfg).expect("serial restore");
        if kind == CheckpointKind::Full {
            // FP32 full restores are bit-exact against the live model.
            prop_assert_eq!(&serial.state, &snap.model);
        }
        for reader_hosts in [1usize, 2, 4, 7] {
            let sharded = restore_sharded(
                &store,
                "job",
                id,
                &model_cfg,
                &RestoreOptions {
                    reader_hosts,
                    decode_workers,
                    ..RestoreOptions::default()
                },
                Duration::ZERO,
            )
            .expect("sharded restore");
            prop_assert_eq!(&sharded.report.state, &serial.state,
                "reader_hosts={} decode_workers={}", reader_hosts, decode_workers);
            prop_assert_eq!(sharded.report.rows_applied, serial.rows_applied);
            prop_assert_eq!(sharded.report.shards_merged, serial.shards_merged);
            prop_assert_eq!(sharded.report.bytes_read, serial.bytes_read);
            prop_assert_eq!(
                sharded.report.incremental_rows.modified_rows(),
                serial.incremental_rows.modified_rows()
            );
            prop_assert_eq!(sharded.breakdown.reader_hosts, reader_hosts);
        }
    }
}

/// The headline acceptance property at the facade level: with one downlink
/// per reader host, an 8-host restore of the same checkpoint reaches
/// ready-to-train in measurably (~8x) less simulated time than a single
/// host, while remaining bit-identical to the serial restore.
#[test]
fn eight_reader_hosts_reach_ready_to_train_sooner_and_restore_identically() {
    let (model_cfg, snap) = snapshot_for(13, 2000, 900, 16, 3, CheckpointKind::Full);
    let run = |reader_hosts: usize| {
        let clock = SimClock::new();
        let store = SimulatedRemoteStore::new(
            RemoteConfig {
                bandwidth_bytes_per_sec: 2.0 * 1024.0 * 1024.0,
                base_latency: Duration::from_micros(100),
                replication: 2, // writes amplified; reads fetch one replica
                channels: reader_hosts as u32,
            },
            clock,
        );
        let writer = CheckpointWriter::new(&store, "job");
        let cfg = CheckpointConfig {
            chunk_rows: 128,
            ..CheckpointConfig::default()
        };
        writer
            .write(&snap, CheckpointId(0), None, QuantScheme::Fp32, &cfg)
            .expect("write");
        let failed_at = store.wait_for_drain();
        let sharded = restore_sharded(
            &store,
            "job",
            CheckpointId(0),
            &model_cfg,
            &RestoreOptions {
                reader_hosts,
                ..RestoreOptions::default()
            },
            failed_at,
        )
        .expect("restore");
        (sharded.breakdown.fetch, sharded.report.state)
    };
    let (t1, s1) = run(1);
    let (t8, s8) = run(8);
    assert_eq!(s1, s8, "reader sharding must not change the restored state");
    assert_eq!(s1, snap.model, "fp32 restore is bit-exact");
    assert!(
        t8.as_secs_f64() < 0.25 * t1.as_secs_f64(),
        "8 downlinks should approach 8x faster ready-to-train: 1-host {t1:?}, 8-host {t8:?}"
    );
}
