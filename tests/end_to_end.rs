//! End-to-end integration: train → checkpoint → crash → restore → resume,
//! across policies and quantization modes.

use check_n_run::core::{
    CheckpointConfig, CheckpointKind, EngineBuilder, PolicyKind, QuantMode,
};
use check_n_run::model::ModelConfig;
use check_n_run::quant::QuantScheme;
use check_n_run::storage::ObjectStore;
use check_n_run::workload::{DatasetSpec, TableAccessSpec};

fn spec(seed: u64) -> DatasetSpec {
    DatasetSpec {
        seed,
        batch_size: 16,
        dense_dim: 4,
        tables: vec![
            TableAccessSpec::new(2000, 2, 1.0),
            TableAccessSpec::new(1000, 1, 0.9),
        ],
        concept_seed: None,
    }
}

fn engine(seed: u64, policy: PolicyKind, quant: QuantMode) -> check_n_run::core::Engine {
    EngineBuilder::new(spec(seed), ModelConfig::for_dataset(&spec(seed), 8))
        .checkpoint_config(CheckpointConfig {
            interval_batches: 25,
            policy,
            quant,
            chunk_rows: 256,
            ..CheckpointConfig::default()
        })
        .cluster_shape(2, 2)
        .build()
        .expect("engine")
}

/// The central correctness claim: with FP32 checkpoints, a run that crashes
/// and restores is bit-for-bit identical to a run that never crashed —
/// for every policy.
#[test]
fn crash_and_restore_is_invisible_for_every_policy() {
    for policy in [
        PolicyKind::FullOnly,
        PolicyKind::OneShot,
        PolicyKind::Consecutive,
        PolicyKind::Intermittent,
    ] {
        let mut crashed = engine(5, policy, QuantMode::None);
        crashed.train_batches(100).unwrap();
        crashed.train_batches(13).unwrap(); // mid-interval progress, lost
        crashed.simulate_failure_and_restore().unwrap();
        crashed.train_batches(50).unwrap();

        let mut reference = engine(5, policy, QuantMode::None);
        reference.train_batches(150).unwrap();

        assert_eq!(
            crashed.trainer().model().state_hash(),
            reference.trainer().model().state_hash(),
            "{policy:?}: crash+restore diverged from the uninterrupted run"
        );
    }
}

/// Two crashes in a row, including one immediately after restoring.
#[test]
fn repeated_failures_converge() {
    let mut e = engine(9, PolicyKind::Intermittent, QuantMode::None);
    e.train_batches(75).unwrap();
    e.simulate_failure_and_restore().unwrap();
    e.simulate_failure_and_restore().unwrap(); // crash during recovery
    e.train_batches(75).unwrap();

    let mut reference = engine(9, PolicyKind::Intermittent, QuantMode::None);
    reference.train_batches(150).unwrap();
    assert_eq!(
        e.trainer().model().state_hash(),
        reference.trainer().model().state_hash()
    );
}

/// Quantized restores perturb embeddings within the quantization error
/// bound and leave MLPs exact; training continues and stays healthy.
#[test]
fn quantized_restore_stays_within_error_bound() {
    let mut e = engine(
        11,
        PolicyKind::OneShot,
        QuantMode::Fixed(QuantScheme::Asymmetric { bits: 8 }),
    );
    e.train_batches(50).unwrap();
    let before = e.evaluate(10_000, 10_020);
    let report = e.simulate_failure_and_restore().unwrap();
    assert_eq!(report.scheme, QuantScheme::Asymmetric { bits: 8 });
    let after = e.evaluate(10_000, 10_020);
    assert!(
        (after.logloss - before.logloss).abs() < 0.05,
        "8-bit restore moved held-out logloss too much: {} -> {}",
        before.logloss,
        after.logloss
    );
    // Training proceeds normally after a quantized restore.
    e.train_batches(50).unwrap();
    let later = e.evaluate(10_000, 10_020);
    assert!(later.logloss < after.logloss + 0.05);
}

/// FP16 checkpoints restore with ~half-precision accuracy end to end.
#[test]
fn fp16_checkpoints_work_end_to_end() {
    let mut e = engine(
        23,
        PolicyKind::OneShot,
        QuantMode::Fixed(QuantScheme::Fp16),
    );
    e.train_batches(50).unwrap();
    let weights_before: Vec<f32> = e.trainer().model().tables()[0].data().to_vec();
    e.simulate_failure_and_restore().unwrap();
    let weights_after = e.trainer().model().tables()[0].data();
    for (a, b) in weights_before.iter().zip(weights_after) {
        // Half precision: relative error ~2^-11, absolute tiny at our scale.
        assert!((a - b).abs() <= a.abs() / 1024.0 + 1e-4, "{a} vs {b}");
    }
    e.train_batches(25).unwrap();
}

/// The §6.2.1 fallback: enough restores push the next checkpoints to 8-bit.
#[test]
fn bitwidth_fallback_escalates_to_8_bits() {
    let mut e = engine(
        13,
        PolicyKind::Intermittent,
        QuantMode::Dynamic {
            expected_restores: 1,
        },
    );
    e.train_batches(25).unwrap();
    assert_eq!(e.current_scheme().bits(), 2);
    for _ in 0..4 {
        e.simulate_failure_and_restore().unwrap();
    }
    assert_eq!(e.current_scheme().bits(), 4);
    for _ in 0..17 {
        e.simulate_failure_and_restore().unwrap();
    }
    assert_eq!(e.current_scheme().bits(), 8, "fallback must reach 8-bit");
    // And the checkpoint written now records that scheme.
    e.train_batches(25).unwrap();
    let last = e.stats().intervals.last().unwrap();
    assert_eq!(last.kind, CheckpointKind::Incremental);
}

/// Capacity accounting matches the store's ground truth at every interval.
#[test]
fn controller_capacity_matches_store() {
    for policy in [PolicyKind::OneShot, PolicyKind::Consecutive] {
        let mut e = engine(17, policy, QuantMode::None);
        e.train_batches(125).unwrap();
        assert_eq!(
            e.controller().live_bytes(),
            e.store().total_bytes(),
            "{policy:?}: registry and store disagree"
        );
    }
}

/// Write latency is visible through the simulated store and checkpoints
/// never overlap (each interval's write finishes before the next snapshot).
#[test]
fn checkpoints_never_overlap() {
    let mut e = engine(19, PolicyKind::OneShot, QuantMode::None);
    e.train_batches(100).unwrap();
    let intervals = &e.stats().intervals;
    assert!(intervals.len() >= 3);
    for i in intervals {
        assert!(i.write_latency > std::time::Duration::ZERO);
    }
    // The store is fully drained after the engine waits at each boundary;
    // the last checkpoint may still be in flight, but no two overlap, which
    // the serialized channel guarantees by construction. Validate the clock
    // moved past every checkpoint issue time.
    assert!(e.clock().now() > std::time::Duration::ZERO);
}
