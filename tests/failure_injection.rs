//! Failure injection on the storage path: corruption is always detected,
//! deletes keep bookkeeping honest, and the filesystem backend behaves like
//! the in-memory one under the full checkpoint stack.

use bytes::Bytes;
use check_n_run::core::manifest::{CheckpointId, CheckpointKind, Manifest};
use check_n_run::core::policy::{Decision, TrackerAction};
use check_n_run::core::restore::restore;
use check_n_run::core::snapshot::SnapshotTaker;
use check_n_run::core::write::CheckpointWriter;
use check_n_run::core::{CheckpointConfig, CnrError};
use check_n_run::cluster::SimClock;
use check_n_run::model::{DlrmModel, ModelConfig, ShardPlan};
use check_n_run::quant::QuantScheme;
use check_n_run::reader::ReaderState;
use check_n_run::storage::{FsStore, InMemoryStore, ObjectStore};
use check_n_run::trainer::{Trainer, TrainerConfig};
use check_n_run::workload::{DatasetSpec, SyntheticDataset};

fn trained_snapshot(
    batches: u64,
) -> (
    ModelConfig,
    check_n_run::core::TrainingSnapshot,
    u64, // expected state hash
) {
    let spec = DatasetSpec::tiny(404);
    let ds = SyntheticDataset::new(spec.clone());
    let model_cfg = ModelConfig::for_dataset(&spec, 8);
    let plan = ShardPlan::balanced(&model_cfg, 1, 2);
    let model = DlrmModel::new(model_cfg.clone());
    let mut trainer = Trainer::new(model, SimClock::new(), TrainerConfig::default());
    for i in 0..batches {
        trainer.train_one(&ds.batch(i));
    }
    let hash = trainer.model().state_hash();
    let snap = SnapshotTaker::new(plan).take(
        &mut trainer,
        ReaderState::at(batches),
        Decision {
            kind: CheckpointKind::Full,
            tracker: TrackerAction::SnapshotReset,
        },
        &CheckpointConfig::default(),
    );
    (model_cfg, snap, hash)
}

#[test]
fn every_corrupted_object_fails_restore_loudly() {
    let (model_cfg, snap, _) = trained_snapshot(3);
    let store = InMemoryStore::new();
    let writer = CheckpointWriter::new(&store, "job");
    let rec = writer
        .write(
            &snap,
            CheckpointId(0),
            None,
            QuantScheme::Fp32,
            &CheckpointConfig::default(),
        )
        .unwrap();

    // Corrupt each stored object in turn; every restore attempt must error.
    let mut keys: Vec<String> = rec.manifest.chunks.iter().map(|c| c.key.clone()).collect();
    keys.push(rec.manifest_key.clone());
    for key in keys {
        let original = store.get(&key).unwrap();
        let mut corrupted = original.to_vec();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0x80;
        store.put(&key, Bytes::from(corrupted)).unwrap();
        let result = restore(&store, "job", CheckpointId(0), &model_cfg);
        assert!(
            matches!(result, Err(CnrError::Corrupt(_))),
            "corrupting {key} was not detected"
        );
        store.put(&key, original).unwrap(); // heal for the next round
    }
    // Healed store restores fine.
    assert!(restore(&store, "job", CheckpointId(0), &model_cfg).is_ok());
}

#[test]
fn missing_chunk_fails_restore() {
    let (model_cfg, snap, _) = trained_snapshot(2);
    let store = InMemoryStore::new();
    let writer = CheckpointWriter::new(&store, "job");
    let rec = writer
        .write(
            &snap,
            CheckpointId(0),
            None,
            QuantScheme::Fp32,
            &CheckpointConfig::default(),
        )
        .unwrap();
    store.delete(&rec.manifest.chunks[0].key).unwrap();
    assert!(matches!(
        restore(&store, "job", CheckpointId(0), &model_cfg),
        Err(CnrError::Storage(_))
    ));
}

#[test]
fn fs_store_runs_the_full_checkpoint_stack() {
    let dir = std::env::temp_dir().join(format!(
        "cnr-e2e-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let store = FsStore::open(&dir).unwrap();

    let (model_cfg, snap, hash) = trained_snapshot(4);
    let writer = CheckpointWriter::new(&store, "job");
    let rec = writer
        .write(
            &snap,
            CheckpointId(0),
            None,
            QuantScheme::Fp32,
            &CheckpointConfig::default(),
        )
        .unwrap();

    // Reopen the directory as a new store (process restart) and restore.
    drop(store);
    let store2 = FsStore::open(&dir).unwrap();
    let manifest = Manifest::decode(&store2.get(&rec.manifest_key).unwrap()).unwrap();
    assert_eq!(manifest.id, CheckpointId(0));
    let report = restore(&store2, "job", CheckpointId(0), &model_cfg).unwrap();
    let mut model = DlrmModel::new(model_cfg);
    report.state.restore(&mut model);
    assert_eq!(model.state_hash(), hash, "fs-backed restore must be exact");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_manifest_fails_decode() {
    let (_, snap, _) = trained_snapshot(2);
    let store = InMemoryStore::new();
    let writer = CheckpointWriter::new(&store, "job");
    let rec = writer
        .write(
            &snap,
            CheckpointId(0),
            None,
            QuantScheme::Fp32,
            &CheckpointConfig::default(),
        )
        .unwrap();
    let bytes = store.get(&rec.manifest_key).unwrap();
    for cut in [0, 1, 4, 7, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            Manifest::decode(&bytes[..cut]).is_err(),
            "truncation at {cut} accepted"
        );
    }
}
