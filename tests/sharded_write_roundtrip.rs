//! Sharded write path invariants, property-tested end to end: for random
//! models and configurations, a sharded write followed by a merged restore
//! is bit-identical to the single-shard path — across 1/2/4/7 writer hosts,
//! including row counts that don't divide evenly.

use check_n_run::cluster::SimClock;
use check_n_run::core::config::CheckpointConfig;
use check_n_run::core::manifest::{CheckpointId, CheckpointKind};
use check_n_run::core::policy::{Decision, TrackerAction};
use check_n_run::core::restore::restore;
use check_n_run::core::snapshot::SnapshotTaker;
use check_n_run::core::write::CheckpointWriter;
use check_n_run::core::TrainingSnapshot;
use check_n_run::model::{DlrmModel, ModelConfig, ModelState, ShardPlan};
use check_n_run::quant::QuantScheme;
use check_n_run::reader::ReaderState;
use check_n_run::storage::{InMemoryStore, RemoteConfig, SimulatedRemoteStore};
use check_n_run::trainer::{Trainer, TrainerConfig};
use check_n_run::workload::{DatasetSpec, SyntheticDataset, TableAccessSpec};
use proptest::prelude::*;
use std::time::Duration;

/// Trains a small random model and snapshots it.
fn snapshot_for(
    seed: u64,
    rows_a: usize,
    rows_b: usize,
    dim: usize,
    batches: u64,
    kind: CheckpointKind,
) -> (ModelConfig, TrainingSnapshot) {
    let spec = DatasetSpec {
        seed,
        batch_size: 16,
        dense_dim: 4,
        tables: vec![
            TableAccessSpec::new(rows_a as u64, 2, 1.0),
            TableAccessSpec::new(rows_b as u64, 1, 0.9),
        ],
        concept_seed: None,
    };
    let ds = SyntheticDataset::new(spec.clone());
    let model_cfg = ModelConfig::for_dataset(&spec, dim);
    let model = DlrmModel::new(model_cfg.clone());
    let mut trainer = Trainer::new(model, SimClock::new(), TrainerConfig::default());
    for i in 0..batches {
        trainer.train_one(&ds.batch(i));
    }
    let decision = match kind {
        CheckpointKind::Full => Decision {
            kind,
            tracker: TrackerAction::SnapshotReset,
        },
        CheckpointKind::Incremental => Decision {
            kind,
            tracker: TrackerAction::SnapshotKeep,
        },
    };
    let snap = SnapshotTaker::new(ShardPlan::balanced(&model_cfg, 1, 2)).take(
        &mut trainer,
        ReaderState::at(batches),
        decision,
        &CheckpointConfig::default(),
    );
    (model_cfg, snap)
}

/// Writes `snap` over `hosts` writer hosts and restores it. An incremental
/// snapshot first gets a fixed single-shard full baseline (identical across
/// comparisons) so its chain restores; the shard count under test applies
/// to the newest checkpoint.
fn roundtrip(
    model_cfg: &ModelConfig,
    snap: &TrainingSnapshot,
    hosts: usize,
    chunk_rows: usize,
) -> (ModelState, usize) {
    let store = InMemoryStore::new();
    let writer = CheckpointWriter::new(&store, "job");
    let cfg = CheckpointConfig {
        chunk_rows,
        writer_hosts: hosts,
        ..CheckpointConfig::default()
    };
    let (id, base) = if snap.kind == CheckpointKind::Incremental {
        let mut full = snap.clone();
        full.kind = CheckpointKind::Full;
        full.delta = check_n_run::tracking::TrackerSnapshot::full(
            &model_cfg.row_counts(),
        );
        let base_cfg = CheckpointConfig {
            chunk_rows,
            writer_hosts: 1,
            ..CheckpointConfig::default()
        };
        writer
            .write(&full, CheckpointId(0), None, QuantScheme::Fp32, &base_cfg)
            .expect("baseline write");
        (CheckpointId(1), Some(CheckpointId(0)))
    } else {
        (CheckpointId(0), None)
    };
    let rec = writer
        .write(snap, id, base, QuantScheme::Fp32, &cfg)
        .expect("write");
    // Shard summaries account for every chunk.
    let shard_rows: u64 = rec.manifest.shards.iter().map(|s| s.rows).sum();
    let chunk_rows_total: u64 = rec.manifest.chunks.iter().map(|c| c.rows as u64).sum();
    assert_eq!(shard_rows, chunk_rows_total);
    let report = restore(&store, "job", id, model_cfg).expect("restore");
    (report.state, report.shards_merged)
}

proptest! {
    /// Sharded write → merged restore equals the single-shard path bit for
    /// bit, for random geometries (including non-divisible row counts),
    /// chunk sizes, and 1/2/4/7 hosts.
    #[test]
    fn sharded_roundtrip_is_bit_identical(
        seed in any::<u64>(),
        rows_a in 8usize..300,
        rows_b in 1usize..120,
        dim_pow in 0u32..4,
        batches in 1u64..4,
        chunk_rows in 1usize..80,
        full in 0u8..2,
    ) {
        let dim = 1usize << dim_pow;
        let kind = if full == 1 { CheckpointKind::Full } else { CheckpointKind::Incremental };
        let (model_cfg, snap) = snapshot_for(seed, rows_a, rows_b, dim, batches, kind);
        let (single, merged_single) = roundtrip(&model_cfg, &snap, 1, chunk_rows);
        // Full = one manifest, one shard; incremental adds its baseline.
        prop_assert_eq!(merged_single, if kind == CheckpointKind::Full { 1 } else { 2 });
        if kind == CheckpointKind::Full {
            // FP32 full restores are bit-exact against the live model.
            prop_assert_eq!(&single, &snap.model);
        }
        for hosts in [2usize, 4, 7] {
            let (sharded, merged) = roundtrip(&model_cfg, &snap, hosts, chunk_rows);
            prop_assert_eq!(&sharded, &single, "hosts={}", hosts);
            // A chain merges the shards of every manifest it applies: up to
            // `hosts` for the target plus 1 for an incremental's baseline.
            prop_assert!(merged >= 1 && merged <= hosts + 1);
        }
    }
}

/// The headline acceptance property at the facade level: with one uplink
/// per writer host, an 8-shard write of the same snapshot reaches
/// durability in measurably less simulated time than a single shard, and
/// restores identically.
#[test]
fn eight_shards_reach_durability_sooner_and_restore_identically() {
    let (model_cfg, snap) = snapshot_for(7, 2000, 900, 16, 3, CheckpointKind::Full);
    let write = |hosts: usize| {
        let store = SimulatedRemoteStore::new(
            RemoteConfig {
                bandwidth_bytes_per_sec: 2.0 * 1024.0 * 1024.0,
                base_latency: Duration::from_micros(100),
                replication: 2,
                channels: hosts as u32,
            },
            SimClock::new(),
        );
        let writer = CheckpointWriter::new(&store, "job");
        let cfg = CheckpointConfig {
            chunk_rows: 128,
            writer_hosts: hosts,
            ..CheckpointConfig::default()
        };
        let rec = writer
            .write(&snap, CheckpointId(0), None, QuantScheme::Fp32, &cfg)
            .expect("write");
        let state = restore(&store, "job", CheckpointId(0), &model_cfg)
            .expect("restore")
            .state;
        (rec.completed_at, state)
    };
    let (t1, s1) = write(1);
    let (t8, s8) = write(8);
    assert_eq!(s1, s8, "sharding must not change the restored state");
    assert_eq!(s1, snap.model, "fp32 restore is bit-exact");
    assert!(
        t8.as_secs_f64() < 0.35 * t1.as_secs_f64(),
        "8 uplinks should approach 8x faster durability: 1-shard {t1:?}, 8-shard {t8:?}"
    );
}

/// A TieredStore in front of the simulated remote serves restore reads
/// from the local cache without touching the remote channel.
#[test]
fn tiered_store_serves_restore_from_cache() {
    use check_n_run::storage::TieredStore;
    let (model_cfg, snap) = snapshot_for(11, 500, 200, 8, 2, CheckpointKind::Full);
    let remote = SimulatedRemoteStore::new(RemoteConfig::default(), SimClock::new());
    let store = TieredStore::new(InMemoryStore::new(), remote, 1 << 30);
    let writer = CheckpointWriter::new(&store, "job");
    let cfg = CheckpointConfig::default();
    writer
        .write(&snap, CheckpointId(0), None, QuantScheme::Fp32, &cfg)
        .expect("write");
    let report = restore(&store, "job", CheckpointId(0), &model_cfg).expect("restore");
    assert_eq!(report.state, snap.model);
    // The manifest went through `put` (write-through: cached); chunks went
    // through multipart (cached only on first read). Restoring a second
    // time is all cache hits.
    let misses_after_first = store.cache_misses();
    restore(&store, "job", CheckpointId(0), &model_cfg).expect("restore again");
    assert_eq!(store.cache_misses(), misses_after_first, "second restore is cache-resident");
    assert!(store.cache_hits() > 0);
    assert_eq!(store.remote().metrics().snapshot().gets as usize, misses_after_first as usize);
}
