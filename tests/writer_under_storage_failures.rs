//! The writer pipeline under storage failures: errors propagate cleanly
//! (no panics, no hangs), nothing half-written is ever registered, and the
//! checkpoint succeeds when retried against healthy storage.

use check_n_run::core::controller::CheckpointController;
use check_n_run::core::manifest::{CheckpointId, CheckpointKind};
use check_n_run::core::policy::{Decision, TrackerAction};
use check_n_run::core::restore::restore;
use check_n_run::core::snapshot::SnapshotTaker;
use check_n_run::core::write::CheckpointWriter;
use check_n_run::core::{CheckpointConfig, CnrError};
use check_n_run::cluster::SimClock;
use check_n_run::model::{DlrmModel, ModelConfig, ShardPlan};
use check_n_run::quant::QuantScheme;
use check_n_run::reader::ReaderState;
use check_n_run::storage::{FlakyStore, InMemoryStore, ObjectStore};
use check_n_run::trainer::{Trainer, TrainerConfig};
use check_n_run::workload::{DatasetSpec, SyntheticDataset};
use std::sync::Arc;

fn snapshot() -> (ModelConfig, check_n_run::core::TrainingSnapshot, u64) {
    let spec = DatasetSpec::tiny(777);
    let ds = SyntheticDataset::new(spec.clone());
    let model_cfg = ModelConfig::for_dataset(&spec, 8);
    let plan = ShardPlan::balanced(&model_cfg, 1, 2);
    let model = DlrmModel::new(model_cfg.clone());
    let mut trainer = Trainer::new(model, SimClock::new(), TrainerConfig::default());
    for i in 0..4 {
        trainer.train_one(&ds.batch(i));
    }
    let hash = trainer.model().state_hash();
    let snap = SnapshotTaker::new(plan).take(
        &mut trainer,
        ReaderState::at(4),
        Decision {
            kind: CheckpointKind::Full,
            tracker: TrackerAction::SnapshotReset,
        },
        &CheckpointConfig::default(),
    );
    (model_cfg, snap, hash)
}

#[test]
fn put_failures_surface_as_pipeline_errors() {
    let (_, snap, _) = snapshot();
    // Fail the second put: with several chunks, one worker errors while
    // others succeed; write() must return the error, not panic or hang.
    let store = FlakyStore::new(InMemoryStore::new(), 2);
    let cfg = CheckpointConfig {
        chunk_rows: 128,
        quantize_workers: 3,
        ..CheckpointConfig::default()
    };
    let writer = CheckpointWriter::new(&store, "job");
    let result = writer.write(&snap, CheckpointId(0), None, QuantScheme::Fp32, &cfg);
    assert!(
        matches!(result, Err(CnrError::Storage(_))),
        "expected a storage error, got {result:?}"
    );
    assert!(store.failures_injected() > 0);
}

#[test]
fn failed_checkpoint_is_never_registered_and_retry_succeeds() {
    let (model_cfg, snap, hash) = snapshot();
    // Transient outage: the first few puts fail, then storage heals.
    let store = Arc::new(FlakyStore::failing_first(InMemoryStore::new(), 7));
    let mut controller = CheckpointController::new(
        store.clone() as Arc<dyn ObjectStore>,
        "job",
        1,
    );
    let cfg = CheckpointConfig {
        chunk_rows: 128,
        ..CheckpointConfig::default()
    };

    // Attempt until one write fully succeeds (the engine's caller-side
    // retry; each attempt uses a fresh checkpoint id like a real retry
    // under a new interval).
    let mut id = 0u64;
    let record = loop {
        let writer = CheckpointWriter::new(store.as_ref(), "job");
        match writer.write(&snap, CheckpointId(id), None, QuantScheme::Fp32, &cfg) {
            Ok(rec) => break rec,
            Err(CnrError::Storage(_)) => {
                id += 1;
                assert!(id < 20, "retries should converge quickly");
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    };
    controller
        .register(&record.manifest, &record.manifest_key)
        .unwrap();
    assert_eq!(controller.live(), vec![CheckpointId(id)]);

    // The registered checkpoint restores exactly, regardless of the debris
    // left by failed attempts.
    let report = restore(store.as_ref(), "job", CheckpointId(id), &model_cfg).unwrap();
    let mut model = DlrmModel::new(model_cfg);
    report.state.restore(&mut model);
    assert_eq!(model.state_hash(), hash);
}

#[test]
fn manifest_put_failure_leaves_checkpoint_unreadable() {
    let (model_cfg, snap, _) = snapshot();
    // One chunk per table (+1 manifest): fail exactly the manifest put.
    let cfg = CheckpointConfig {
        chunk_rows: 1 << 20, // larger than any table: one chunk per table
        quantize_workers: 1,
        ..CheckpointConfig::default()
    };
    // Count objects first with a clean run.
    let clean = InMemoryStore::new();
    let n_objects = {
        let writer = CheckpointWriter::new(&clean, "job");
        let rec = writer
            .write(&snap, CheckpointId(0), None, QuantScheme::Fp32, &cfg)
            .unwrap();
        rec.manifest.chunks.len() + 1
    };
    let store = FlakyStore::new(InMemoryStore::new(), n_objects as u64);
    let writer = CheckpointWriter::new(&store, "job");
    let result = writer.write(&snap, CheckpointId(0), None, QuantScheme::Fp32, &cfg);
    assert!(result.is_err(), "manifest put failure must fail the write");
    // Without a manifest the checkpoint does not exist for restore purposes.
    assert!(restore(&store, "job", CheckpointId(0), &model_cfg).is_err());
}
