//! Validates the incremental-checkpoint soundness invariant and quantifies
//! the paper's forward-pass tracking approximation (§5.1.1).
//!
//! Soundness: every embedding row whose value changed during an interval
//! must be present in the tracker's delta — otherwise an incremental
//! checkpoint would silently lose updates. The converse (rows in the delta
//! that did not actually change) is allowed and is exactly the paper's
//! "track reads in the forward pass as a proxy for writes" approximation;
//! we measure its false-positive rate.

use check_n_run::cluster::SimClock;
use check_n_run::model::{DlrmModel, ModelConfig};
use check_n_run::trainer::{Trainer, TrainerConfig};
use check_n_run::workload::{DatasetSpec, SyntheticDataset};

fn setup(seed: u64) -> (SyntheticDataset, Trainer) {
    let spec = DatasetSpec::tiny(seed);
    let ds = SyntheticDataset::new(spec.clone());
    let model = DlrmModel::new(ModelConfig::for_dataset(&spec, 8));
    (
        ds,
        Trainer::new(model, SimClock::new(), TrainerConfig::default()),
    )
}

/// Rows whose bytes changed between two model states, per table.
fn changed_rows(before: &[Vec<f32>], trainer: &Trainer) -> Vec<Vec<usize>> {
    trainer
        .model()
        .tables()
        .iter()
        .enumerate()
        .map(|(t, table)| {
            (0..table.rows())
                .filter(|&r| {
                    let dim = table.dim();
                    table.row(r) != &before[t][r * dim..(r + 1) * dim]
                })
                .collect()
        })
        .collect()
}

#[test]
fn every_changed_row_is_tracked() {
    let (ds, mut trainer) = setup(51);
    let before: Vec<Vec<f32>> = trainer
        .model()
        .tables()
        .iter()
        .map(|t| t.data().to_vec())
        .collect();
    for i in 0..20 {
        trainer.train_one(&ds.batch(i));
    }
    let delta = trainer.tracker().snapshot();
    let changed = changed_rows(&before, &trainer);
    for (t, rows) in changed.iter().enumerate() {
        for &r in rows {
            assert!(
                delta.tables[t].get(r),
                "table {t} row {r} changed but is not in the delta — an \
                 incremental checkpoint would lose this update"
            );
        }
    }
}

#[test]
fn forward_tracking_false_positive_rate_is_small() {
    // A tracked row is a false positive if its value never changed (e.g. a
    // zero gradient). With real gradients this is rare; quantify it.
    let (ds, mut trainer) = setup(53);
    let before: Vec<Vec<f32>> = trainer
        .model()
        .tables()
        .iter()
        .map(|t| t.data().to_vec())
        .collect();
    for i in 0..30 {
        trainer.train_one(&ds.batch(i));
    }
    let delta = trainer.tracker().snapshot();
    let changed = changed_rows(&before, &trainer);
    let tracked: usize = delta.modified_rows();
    let truly_changed: usize = changed.iter().map(|c| c.len()).sum();
    assert!(tracked >= truly_changed);
    let false_positives = tracked - truly_changed;
    let rate = false_positives as f64 / tracked.max(1) as f64;
    assert!(
        rate < 0.02,
        "false-positive rate {rate} too high: {false_positives}/{tracked}"
    );
}

#[test]
fn consecutive_deltas_partition_the_one_shot_delta() {
    // Union of per-interval (reset) deltas == accumulate-since-baseline
    // delta of the same training — the algebra connecting the two policies.
    let (ds, mut one_shot) = setup(57);
    let (_, mut consecutive) = setup(57);
    let mut union = check_n_run::tracking::TrackerSnapshot::empty(
        &one_shot.model().config().row_counts(),
    );
    for interval in 0..4u64 {
        for i in interval * 5..(interval + 1) * 5 {
            one_shot.train_one(&ds.batch(i));
            consecutive.train_one(&ds.batch(i));
        }
        union.union_with(&consecutive.tracker().snapshot_and_reset());
    }
    let accumulated = one_shot.tracker().snapshot();
    assert_eq!(union, accumulated);
}
