//! Lazy-restore bit-identity, property-tested end to end at the engine
//! level: for random datasets, hot fractions, and failure points, a lazy
//! restore (train at first-batch time, fault cold rows in on demand,
//! drain in the background) converges to exactly the state the eager
//! all-or-nothing restore produces — across 1/2/4 reader hosts, with and
//! without a delta-WAL tail past the checkpoint.

use check_n_run::cluster::RestoreMode;
use check_n_run::core::{DeltaWalConfig, EngineBuilder};
use check_n_run::model::ModelConfig;
use check_n_run::storage::RemoteConfig;
use check_n_run::workload::DatasetSpec;
use proptest::prelude::*;
use std::time::Duration;

/// A 4-writer-shard engine over a slow store (so hot/cold arrival order
/// is visible in simulated time), optionally WAL-enabled.
fn builder(seed: u64, reader_hosts: usize, wal: bool) -> EngineBuilder {
    let spec = DatasetSpec::tiny(seed);
    let model_cfg = ModelConfig::for_dataset(&spec, 8);
    let mut b = EngineBuilder::new(spec, model_cfg)
        .checkpoint_every_batches(5)
        .cluster_shape(1, 2)
        .writer_hosts(4)
        .reader_hosts(reader_hosts)
        .remote_config(RemoteConfig {
            bandwidth_bytes_per_sec: 64.0 * 1024.0,
            base_latency: Duration::from_micros(100),
            replication: 1,
            channels: 2,
        });
    if wal {
        b = b.delta_wal(DeltaWalConfig::default());
    }
    b
}

proptest! {
    /// Lazy restore + mid-drain training + drain is bit-identical to the
    /// eager path run over the identical stream and failure point.
    #[test]
    fn lazy_drain_is_bit_identical_to_eager(
        seed in any::<u64>(),
        hosts_idx in 0usize..3,
        wal in any::<bool>(),
        tail in 2u64..5,
        hot_pct in 1u32..=20,
    ) {
        let reader_hosts = [1usize, 2, 4][hosts_idx];
        let hot_fraction = hot_pct as f64 / 100.0;
        // Fail 2-4 batches past the checkpoint at 10, so the tracker's
        // working set gives the priority planner something to defer.
        let total = 10 + tail;

        let mut lazy = builder(seed, reader_hosts, wal)
            .lazy_restore(hot_fraction)
            .build()
            .unwrap();
        let mut eager = builder(seed, reader_hosts, wal).build().unwrap();
        lazy.train_batches(total).unwrap();
        eager.train_batches(total).unwrap();

        lazy.simulate_failure_and_restore().unwrap();
        eager.simulate_failure_and_restore().unwrap();

        let r = lazy.stats().resumes.last().unwrap().clone();
        prop_assert_eq!(r.mode, RestoreMode::Lazy);
        prop_assert!(r.time_to_first_batch <= r.time_to_resume);
        // Strict improvement is only guaranteed on one downlink, where
        // hot chunks serialize strictly before cold ones. With several
        // reader hosts a host whose queue is entirely hot can be the
        // restore's bottleneck, tying first-batch to full resume even
        // when another host carries a cold tail.
        if reader_hosts == 1 && lazy.pending_lazy().is_some() {
            prop_assert!(
                r.time_to_first_batch < r.time_to_resume,
                "a cold tail on one downlink must make first-batch \
                 strictly earlier: first_batch={:?} resume={:?}",
                r.time_to_first_batch,
                r.time_to_resume
            );
        }
        let re = eager.stats().resumes.last().unwrap();
        prop_assert_eq!(re.mode, RestoreMode::Eager);
        prop_assert_eq!(re.time_to_first_batch, re.time_to_resume);
        prop_assert_eq!(re.fault_in_fetches, 0);

        // Train through the drain window (cold rows the batches touch
        // fault in on demand), then finish the drain and compare.
        lazy.train_batches(3).unwrap();
        eager.train_batches(3).unwrap();
        lazy.drain_lazy_restore().unwrap();
        prop_assert!(lazy.pending_lazy().is_none());
        prop_assert_eq!(
            lazy.trainer().model().state_hash(),
            eager.trainer().model().state_hash(),
            "hosts={} wal={} tail={} hot={}: lazy path diverged",
            reader_hosts, wal, tail, hot_fraction
        );
        prop_assert_eq!(
            lazy.trainer().model().iteration(),
            eager.trainer().model().iteration()
        );
    }
}
