//! Property-based tests over the core data structures and codecs.

use check_n_run::core::manifest::ChunkPayload;
use check_n_run::core::predictor;
use check_n_run::quant::bitpack::{mask_for, pack, packed_len, unpack};
use check_n_run::quant::codec::QuantizedRow;
use check_n_run::quant::uniform::{dequantize, quantize_asymmetric, quantize_with_range};
use check_n_run::quant::QuantScheme;
use check_n_run::tracking::BitVec;
use proptest::prelude::*;

proptest! {
    /// Bit-packing roundtrips for every width and any codes that fit.
    #[test]
    fn bitpack_roundtrip(bits in 1u8..=16, seed in any::<u64>(), n in 0usize..300) {
        let mask = mask_for(bits) as u64;
        let codes: Vec<u16> = (0..n)
            .map(|i| ((seed.wrapping_mul(i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15) >> 13) & mask) as u16)
            .collect();
        let packed = pack(&codes, bits);
        prop_assert_eq!(packed.len(), packed_len(n, bits));
        let unpacked = unpack(&packed, bits, n).unwrap();
        prop_assert_eq!(codes, unpacked);
    }

    /// Asymmetric quantization error is bounded by half the step size for
    /// in-range values.
    #[test]
    fn asymmetric_error_bound(
        values in prop::collection::vec(-100.0f32..100.0, 1..64),
        bits in 2u8..=8,
    ) {
        let (codes, params) = quantize_asymmetric(&values, bits);
        let back = dequantize(&codes, &params);
        let scale = match params {
            check_n_run::quant::QuantParams::Uniform { scale, .. } => scale,
            _ => unreachable!(),
        };
        for (x, y) in values.iter().zip(&back) {
            prop_assert!(
                (x - y).abs() <= scale / 2.0 + scale * 1e-3 + 1e-6,
                "error {} exceeds half-step {}", (x - y).abs(), scale / 2.0
            );
        }
    }

    /// Clipped quantization never produces values outside the clip range
    /// (modulo float rounding).
    #[test]
    fn clipped_range_is_respected(
        values in prop::collection::vec(-10.0f32..10.0, 1..64),
        lo in -5.0f32..0.0,
        width in 0.1f32..5.0,
        bits in 2u8..=8,
    ) {
        let hi = lo + width;
        let (codes, params) = quantize_with_range(&values, lo, hi, bits);
        for v in dequantize(&codes, &params) {
            prop_assert!(v >= lo - width * 1e-3 && v <= hi + width * 1e-3);
        }
    }

    /// Every quantized-row encoding decodes back to itself.
    #[test]
    fn row_codec_roundtrip(
        values in prop::collection::vec(-2.0f32..2.0, 0..64),
        scheme_idx in 0usize..4,
        bits in 2u8..=8,
    ) {
        let scheme = match scheme_idx {
            0 => QuantScheme::Fp32,
            1 => QuantScheme::Symmetric { bits },
            2 => QuantScheme::Asymmetric { bits },
            _ => QuantScheme::KMeans { bits: bits.min(6) },
        };
        let q = scheme.quantize_row(&values);
        let mut buf = Vec::new();
        q.encode_into(&mut buf);
        prop_assert_eq!(buf.len(), q.byte_size());
        let mut slice = buf.as_slice();
        let back = QuantizedRow::decode_from(&mut slice).unwrap();
        prop_assert!(slice.is_empty());
        prop_assert_eq!(back, q);
    }

    /// Chunk payloads roundtrip with and without optimizer state.
    #[test]
    fn chunk_roundtrip(
        rows in prop::collection::vec(prop::collection::vec(-1.0f32..1.0, 8), 0..20),
        with_acc in any::<bool>(),
        table in 0u16..8,
    ) {
        let scheme = QuantScheme::Asymmetric { bits: 4 };
        let chunk = ChunkPayload {
            table,
            row_indices: (0..rows.len() as u32).map(|i| i * 3).collect(),
            optimizer_state: with_acc.then(|| rows.iter().map(|r| r[0].abs()).collect()),
            rows: rows.iter().map(|r| scheme.quantize_row(r)).collect(),
        };
        let bytes = chunk.encode();
        let back = ChunkPayload::decode(&bytes).unwrap();
        prop_assert_eq!(back, chunk);
    }

    /// Flipping any byte of an encoded chunk is detected.
    #[test]
    fn chunk_corruption_detected(
        flip_at_fraction in 0.0f64..1.0,
        n_rows in 1usize..10,
    ) {
        let scheme = QuantScheme::Asymmetric { bits: 4 };
        let rows: Vec<Vec<f32>> = (0..n_rows)
            .map(|i| (0..8).map(|j| (i * 8 + j) as f32 * 0.01).collect())
            .collect();
        let chunk = ChunkPayload {
            table: 0,
            row_indices: (0..n_rows as u32).collect(),
            optimizer_state: None,
            rows: rows.iter().map(|r| scheme.quantize_row(r)).collect(),
        };
        let mut bytes = chunk.encode();
        let idx = ((bytes.len() - 1) as f64 * flip_at_fraction) as usize;
        bytes[idx] ^= 0x5A;
        prop_assert!(ChunkPayload::decode(&bytes).is_err());
    }

    /// BitVec set-union-count algebra.
    #[test]
    fn bitvec_union_count(
        a in prop::collection::vec(any::<bool>(), 1..200),
        flip in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let n = a.len().min(flip.len());
        let mut va = BitVec::new(n);
        let mut vb = BitVec::new(n);
        let mut expected_union = 0usize;
        for i in 0..n {
            if a[i] { va.set(i); }
            if flip[i] { vb.set(i); }
            if a[i] || flip[i] { expected_union += 1; }
        }
        let mut u = va.clone();
        u.union_with(&vb);
        prop_assert_eq!(u.count_ones(), expected_union);
        // iter_ones agrees with count and get.
        let ones: Vec<usize> = u.iter_ones().collect();
        prop_assert_eq!(ones.len(), expected_union);
        for i in &ones {
            prop_assert!(u.get(*i));
        }
    }

    /// The intermittent predictor decision equals the paper inequality
    /// computed directly.
    #[test]
    fn predictor_matches_inequality(
        history in prop::collection::vec(0.01f64..1.5, 0..20),
    ) {
        let decision = predictor::should_take_full(&history);
        let expected = match history.last() {
            None => false,
            Some(&last) => {
                let fc = 1.0 + history.iter().sum::<f64>();
                let ic = (history.len() as f64 + 1.0) * last;
                fc <= ic
            }
        };
        prop_assert_eq!(decision, expected);
    }

    /// Dequantize(quantize(x)) is idempotent: re-quantizing a dequantized
    /// row with the same parameters reproduces it exactly. This is why a
    /// restore from a quantized checkpoint does not compound error when
    /// re-checkpointed before further training.
    #[test]
    fn quantization_is_idempotent(
        values in prop::collection::vec(-1.0f32..1.0, 1..32),
        bits in 2u8..=8,
    ) {
        let scheme = QuantScheme::Asymmetric { bits };
        let once = scheme.quantize_row(&values).dequantize();
        let twice = scheme.quantize_row(&once).dequantize();
        prop_assert_eq!(once, twice);
    }

    /// The adaptive greedy search never loses to naive asymmetric on the ℓ2
    /// metric it optimizes (it starts from the naive range and keeps the
    /// best candidate).
    #[test]
    fn adaptive_never_worse_than_naive(
        values in prop::collection::vec(-3.0f32..3.0, 2..48),
        bits in 2u8..=4,
        bins in 2u32..30,
    ) {
        use check_n_run::quant::error::row_l2_error;
        let naive = QuantScheme::Asymmetric { bits }.quantize_row(&values);
        let adaptive = QuantScheme::AdaptiveAsymmetric { bits, num_bins: bins, ratio: 1.0 }
            .quantize_row(&values);
        let e_naive = row_l2_error(&values, &naive.dequantize());
        let e_adaptive = row_l2_error(&values, &adaptive.dequantize());
        prop_assert!(e_adaptive <= e_naive + 1e-9,
            "adaptive {e_adaptive} worse than naive {e_naive}");
    }

    /// Synthetic datasets are deterministic functions of (spec, index) for
    /// arbitrary spec parameters.
    #[test]
    fn dataset_is_deterministic(
        seed in any::<u64>(),
        rows in 1u64..500,
        hot in 1usize..4,
        exponent in 0.5f64..1.5,
        batch_size in 1usize..16,
        index in 0u64..1000,
    ) {
        use check_n_run::workload::{DatasetSpec, SyntheticDataset, TableAccessSpec};
        let spec = DatasetSpec {
            seed,
            batch_size,
            dense_dim: 3,
            tables: vec![TableAccessSpec::new(rows, hot, exponent)],
            concept_seed: None,
        };
        let a = SyntheticDataset::new(spec.clone()).batch(index);
        let b = SyntheticDataset::new(spec).batch(index);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.validate().is_ok());
        prop_assert!(a.sparse[0].iter().all(|&r| (r as u64) < rows));
    }

    /// Active fractions bound the reachable row set for any parameters.
    #[test]
    fn active_fraction_bounds_reach(
        rows in 10u64..300,
        fraction_pct in 1u32..=100,
    ) {
        use check_n_run::workload::{DatasetSpec, SyntheticDataset, TableAccessSpec};
        let fraction = fraction_pct as f64 / 100.0;
        let spec = DatasetSpec {
            seed: 5,
            batch_size: 8,
            dense_dim: 2,
            tables: vec![
                TableAccessSpec::new(rows, 1, 0.7).with_active_fraction(fraction),
            ],
            concept_seed: None,
        };
        let ds = SyntheticDataset::new(spec);
        let mut seen = std::collections::HashSet::new();
        for i in 0..50 {
            for &r in &ds.batch(i).sparse[0] {
                seen.insert(r);
            }
        }
        let max_active = ((rows as f64 * fraction).round() as usize).max(1);
        prop_assert!(seen.len() <= max_active,
            "saw {} distinct rows, active cap {max_active}", seen.len());
    }

    /// The reader tier reproduces the dataset stream exactly for any
    /// sequence of budget extensions.
    #[test]
    fn reader_stream_matches_dataset_for_any_budgets(
        budgets in prop::collection::vec(1u64..6, 1..5),
    ) {
        use check_n_run::reader::{ReaderConfig, ReaderMaster};
        use check_n_run::workload::{DatasetSpec, SyntheticDataset};
        let ds = SyntheticDataset::new(DatasetSpec::tiny(99));
        let reader = ReaderMaster::new(ds.clone(), ReaderConfig::default());
        let mut next = 0u64;
        for b in budgets {
            reader.extend_budget(b);
            for _ in 0..b {
                let batch = reader.next_batch();
                prop_assert_eq!(&batch, &ds.batch(next));
                next += 1;
            }
            prop_assert_eq!(reader.collect_state().next_batch, next);
        }
    }
}
