//! Corruption-injection matrix, end to end at the facade level: for every
//! damage kind ({bit flip, truncated transfer, stale replica}) aimed at
//! every object class ({chunk, manifest, part boundary}) under every
//! reader-host count ({1, 2, 4, 8}), a restore either heals the damage by
//! re-fetching from another replica — bit-identically — or fails with the
//! typed `CnrError::Corrupt`. It NEVER returns silently wrong weights.
//!
//! Damage is injected by `FlakyStore`'s deterministic corruption layer, so
//! every cell of the matrix is exactly reproducible from its seed.

use check_n_run::cluster::SimClock;
use check_n_run::core::config::CheckpointConfig;
use check_n_run::core::error::CnrError;
use check_n_run::core::manifest::{CheckpointId, CheckpointKind};
use check_n_run::core::policy::{Decision, TrackerAction};
use check_n_run::core::read::{restore_sharded, RestoreOptions};
use check_n_run::core::restore::restore;
use check_n_run::core::snapshot::SnapshotTaker;
use check_n_run::core::write::CheckpointWriter;
use check_n_run::core::TrainingSnapshot;
use check_n_run::model::{DlrmModel, ModelConfig, ShardPlan};
use check_n_run::quant::QuantScheme;
use check_n_run::reader::ReaderState;
use check_n_run::storage::{CorruptionKind, CorruptionSpec, FlakyStore, InMemoryStore};
use check_n_run::trainer::{Trainer, TrainerConfig};
use check_n_run::workload::{DatasetSpec, SyntheticDataset, TableAccessSpec};
use proptest::prelude::*;
use std::time::Duration;

/// What class of stored object the corruption is aimed at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    /// A chunk object, written as a single part.
    Chunk,
    /// The checkpoint manifest.
    Manifest,
    /// A chunk object split into several multipart ranges, so the damage
    /// lands on one ranged read of a larger reassembly.
    PartBoundary,
}

impl Target {
    fn key_filter(self) -> &'static str {
        match self {
            Target::Chunk | Target::PartBoundary => "-chunk-",
            Target::Manifest => "/manifest",
        }
    }

    /// Part size for the write: small enough to split chunks for
    /// [`Target::PartBoundary`], one part otherwise.
    fn part_bytes(self) -> usize {
        match self {
            Target::PartBoundary => 256,
            _ => 1 << 20,
        }
    }
}

/// Trains a small deterministic model and snapshots it.
fn snapshot_for(seed: u64) -> (ModelConfig, TrainingSnapshot) {
    let spec = DatasetSpec {
        seed,
        batch_size: 16,
        dense_dim: 4,
        tables: vec![
            TableAccessSpec::new(120, 2, 1.0),
            TableAccessSpec::new(50, 1, 0.9),
        ],
        concept_seed: None,
    };
    let ds = SyntheticDataset::new(spec.clone());
    let model_cfg = ModelConfig::for_dataset(&spec, 8);
    let model = DlrmModel::new(model_cfg.clone());
    let mut trainer = Trainer::new(model, SimClock::new(), TrainerConfig::default());
    for i in 0..3 {
        trainer.train_one(&ds.batch(i));
    }
    let snap = SnapshotTaker::new(ShardPlan::balanced(&model_cfg, 1, 2)).take(
        &mut trainer,
        ReaderState::at(3),
        Decision {
            kind: CheckpointKind::Full,
            tracker: TrackerAction::SnapshotReset,
        },
        &CheckpointConfig::default(),
    );
    (model_cfg, snap)
}

fn write_to(store: &InMemoryStore, snap: &TrainingSnapshot, part_bytes: usize) {
    let writer = CheckpointWriter::new(store, "job");
    let cfg = CheckpointConfig {
        chunk_rows: 32,
        writer_hosts: 2,
        part_bytes,
        ..CheckpointConfig::default()
    };
    writer
        .write(snap, CheckpointId(0), None, QuantScheme::Fp32, &cfg)
        .expect("write");
}

/// The outcome of one matrix cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// The restore succeeded bit-identically and healed the damage.
    Repaired,
    /// The restore refused: the typed corruption error surfaced.
    TypedError,
}

/// Runs one cell: restores a checkpoint whose reads are damaged by
/// `(kind, target)` under `reader_hosts`, with `retries` refetch budget.
/// Panics on any outcome other than repaired-bit-identically or the typed
/// `CnrError::Corrupt` — silent garbage is the one forbidden result.
fn run_cell(
    kind: CorruptionKind,
    target: Target,
    reader_hosts: usize,
    retries: u32,
    persistent: bool,
    seed: u64,
) -> Outcome {
    let (model_cfg, snap) = snapshot_for(7);
    let inner = InMemoryStore::new();
    write_to(&inner, &snap, target.part_bytes());
    let clean = restore(&inner, "job", CheckpointId(0), &model_cfg).expect("clean restore");

    let mode = if persistent {
        CorruptionSpec::every(kind, 1)
    } else {
        CorruptionSpec::once(kind, 1)
    };
    let store = FlakyStore::corrupting_reads(inner, mode.with_seed(seed))
        .with_corrupt_key_filter(target.key_filter());
    let result = restore_sharded(
        &store,
        "job",
        CheckpointId(0),
        &model_cfg,
        &RestoreOptions {
            reader_hosts,
            fetch_retries: retries,
            ..RestoreOptions::default()
        },
        Duration::ZERO,
    );
    match result {
        Ok(sharded) => {
            assert_eq!(
                sharded.report.state, clean.state,
                "a successful restore must be bit-identical \
                 ({kind:?} x {target:?} x {reader_hosts} hosts, seed {seed})"
            );
            assert!(
                sharded.breakdown.corruption_detected >= 1,
                "damage was injected, so a successful restore must have \
                 detected and healed it ({kind:?} x {target:?})"
            );
            assert!(sharded.breakdown.corruption_repaired >= 1);
            assert!(
                sharded.breakdown.corruption_refetches >= sharded.breakdown.corruption_repaired,
                "every heal rides a whole-chunk refetch (never a transient \
                 range retry): {} refetches for {} repairs",
                sharded.breakdown.corruption_refetches,
                sharded.breakdown.corruption_repaired
            );
            Outcome::Repaired
        }
        Err(CnrError::Corrupt(_)) => Outcome::TypedError,
        Err(other) => panic!(
            "corruption must surface as CnrError::Corrupt, got {other:?} \
             ({kind:?} x {target:?} x {reader_hosts} hosts, seed {seed})"
        ),
    }
}

const KINDS: [CorruptionKind; 3] = [
    CorruptionKind::BitFlip,
    CorruptionKind::Truncate,
    CorruptionKind::StaleReplica,
];
const TARGETS: [Target; 3] = [Target::Chunk, Target::Manifest, Target::PartBoundary];
const HOSTS: [usize; 4] = [1, 2, 4, 8];

/// The full 3 x 3 x 4 matrix with a transient fault and a refetch budget:
/// no cell ever yields silent garbage, and nearly every cell heals by
/// refetching (manifests ride the same verify-and-refetch scheduler as
/// chunks). The rare typed-error cell is damage that downgrades the
/// envelope to legacy framing (e.g. a truncation below the header), which
/// the v2 decoder then rejects — still typed, still no garbage.
#[test]
fn transient_corruption_matrix_heals_or_fails_typed() {
    let mut repaired = 0u32;
    let mut typed = 0u32;
    for kind in KINDS {
        for target in TARGETS {
            for hosts in HOSTS {
                match run_cell(kind, target, hosts, 2, false, 11) {
                    Outcome::Repaired => repaired += 1,
                    Outcome::TypedError => typed += 1,
                }
            }
        }
    }
    assert_eq!(repaired + typed, 36, "every cell ran");
    assert!(
        repaired >= 30,
        "the refetch path repaired the matrix (repaired {repaired}/36)"
    );
}

/// With every replica damaged (persistent corruption) and no healthy
/// refetch possible, every cell must fail with the typed error — the
/// retry budget must never be talked into returning garbage.
#[test]
fn persistent_corruption_always_fails_typed() {
    for kind in KINDS {
        for target in TARGETS {
            for hosts in HOSTS {
                assert_eq!(
                    run_cell(kind, target, hosts, 2, true, 13),
                    Outcome::TypedError,
                    "{kind:?} x {target:?} x {hosts} hosts"
                );
            }
        }
    }
}

/// A zero-retry restore hit by transient damage must still never return
/// garbage: it either got lucky on scheduling (impossible here — the
/// first eligible read is damaged) or fails typed.
#[test]
fn no_retry_budget_fails_typed_instead_of_leaking() {
    for kind in KINDS {
        for hosts in [1usize, 4] {
            assert_eq!(
                run_cell(kind, Target::Chunk, hosts, 0, false, 17),
                Outcome::TypedError,
                "{kind:?} x {hosts} hosts"
            );
        }
    }
}

proptest! {
    /// Random cells with random corruption seeds: the repaired-or-typed
    /// invariant holds for arbitrary damage positions, not just the
    /// deterministic seeds of the exhaustive sweeps above.
    #[test]
    fn random_cells_never_leak_garbage(
        seed in any::<u64>(),
        kind_ix in 0usize..3,
        target_ix in 0usize..3,
        hosts_ix in 0usize..4,
        persistent in any::<bool>(),
        retries in 0u32..3,
    ) {
        run_cell(
            KINDS[kind_ix],
            TARGETS[target_ix],
            HOSTS[hosts_ix],
            retries,
            persistent,
            seed,
        );
    }
}
