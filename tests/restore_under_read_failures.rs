//! Sharded restore under transient *read* failures.
//!
//! Remote reads time out in practice just like writes do. The fetch
//! scheduler retries each ranged read a bounded number of times
//! (`RestoreOptions::fetch_retries`); these suites drive the whole restore
//! pipeline through a `FlakyStore` that injects deterministic read
//! failures and assert that (a) transient failures are absorbed without
//! corrupting the restored state, and (b) persistent failures surface as
//! errors rather than silent zero-filled rows.

use check_n_run::cluster::HostKill;
use check_n_run::core::config::CheckpointConfig;
use check_n_run::core::manifest::{CheckpointId, CheckpointKind};
use check_n_run::core::policy::{Decision, TrackerAction};
use check_n_run::core::read::{
    restore_sharded, restore_sharded_with_failures, RestoreOptions,
};
use check_n_run::core::snapshot::SnapshotTaker;
use check_n_run::core::write::CheckpointWriter;
use check_n_run::core::{CnrError, TrainingSnapshot};
use check_n_run::model::{DlrmModel, ModelConfig, ShardPlan};
use check_n_run::quant::QuantScheme;
use check_n_run::reader::ReaderState;
use check_n_run::storage::{FailureMode, FlakyStore, InMemoryStore};
use check_n_run::trainer::{Trainer, TrainerConfig};
use check_n_run::workload::{DatasetSpec, SyntheticDataset};
use std::time::Duration;

fn checkpointed_snapshot() -> (ModelConfig, TrainingSnapshot, InMemoryStore) {
    let spec = DatasetSpec::tiny(5150);
    let ds = SyntheticDataset::new(spec.clone());
    let model_cfg = ModelConfig::for_dataset(&spec, 8);
    let model = DlrmModel::new(model_cfg.clone());
    let mut trainer = Trainer::new(model, check_n_run::cluster::SimClock::new(), TrainerConfig::default());
    for i in 0..3 {
        trainer.train_one(&ds.batch(i));
    }
    let snap = SnapshotTaker::new(ShardPlan::balanced(&model_cfg, 1, 2)).take(
        &mut trainer,
        ReaderState::at(3),
        Decision {
            kind: CheckpointKind::Full,
            tracker: TrackerAction::SnapshotReset,
        },
        &CheckpointConfig::default(),
    );
    let store = InMemoryStore::new();
    let writer = CheckpointWriter::new(&store, "job");
    let cfg = CheckpointConfig {
        chunk_rows: 100,
        writer_hosts: 2,
        ..CheckpointConfig::default()
    };
    writer
        .write(&snap, CheckpointId(0), None, QuantScheme::Fp32, &cfg)
        .expect("write");
    (model_cfg, snap, store)
}

fn options(reader_hosts: usize, retries: u32) -> RestoreOptions {
    RestoreOptions {
        reader_hosts,
        fetch_retries: retries,
        ..RestoreOptions::default()
    }
}

#[test]
fn periodic_read_timeouts_are_absorbed_by_retries() {
    let (model_cfg, snap, inner) = checkpointed_snapshot();
    let store = FlakyStore::failing_reads(inner, FailureMode::Every(4));
    let sharded = restore_sharded(
        &store,
        "job",
        CheckpointId(0),
        &model_cfg,
        &options(4, 3),
        Duration::ZERO,
    )
    .expect("retries must absorb periodic timeouts");
    assert_eq!(sharded.report.state, snap.model, "bit-exact despite timeouts");
    assert!(store.read_failures_injected() > 0, "failures actually fired");
    assert!(sharded.fetch_status.retries_performed >= store.read_failures_injected() - 1);
    assert_eq!(
        sharded.fetch_status.corruption_refetches, 0,
        "transient timeouts are range retries, never whole-chunk heals"
    );
}

#[test]
fn transient_outage_at_restore_start_heals() {
    // An outage long enough to exhaust the manifest fetch's retries fails
    // the first restore attempt loudly; once the store heals, a second
    // attempt succeeds — exactly how an operator-level retry loop would
    // drive it. A *shorter* outage is absorbed inside one attempt, since
    // manifest reads go through the same retrying fetch path as chunks.
    let (model_cfg, snap, inner) = checkpointed_snapshot();
    let store = FlakyStore::failing_reads(inner, FailureMode::FirstN(3));
    let first = restore_sharded(
        &store,
        "job",
        CheckpointId(0),
        &model_cfg,
        &options(2, 2), // 2 retries = 3 attempts, all inside the outage
        Duration::ZERO,
    );
    assert!(first.is_err(), "outage outlasts the manifest fetch retries");
    let second = restore_sharded(
        &store,
        "job",
        CheckpointId(0),
        &model_cfg,
        &options(2, 2),
        Duration::ZERO,
    )
    .expect("healed store restores");
    assert_eq!(second.report.state, snap.model);

    // The shorter outage: two failing reads are absorbed by the manifest
    // fetch's own retries and the restore completes first try.
    let (model_cfg2, snap2, inner2) = checkpointed_snapshot();
    let store2 = FlakyStore::failing_reads(inner2, FailureMode::FirstN(2));
    let absorbed = restore_sharded(
        &store2,
        "job",
        CheckpointId(0),
        &model_cfg2,
        &options(2, 2),
        Duration::ZERO,
    )
    .expect("short outage absorbed in place");
    assert_eq!(absorbed.report.state, snap2.model);
}

#[test]
fn persistent_read_failures_error_rather_than_zero_fill() {
    let (model_cfg, _snap, inner) = checkpointed_snapshot();
    let store = FlakyStore::failing_reads(inner, FailureMode::Every(1));
    let result = restore_sharded(
        &store,
        "job",
        CheckpointId(0),
        &model_cfg,
        &options(4, 2),
        Duration::ZERO,
    );
    assert!(
        matches!(result, Err(CnrError::Storage(_))),
        "exhausted retries must fail the restore loudly"
    );
}

#[test]
fn read_failures_and_reader_death_compose() {
    // A flaky store *and* a reader host dying mid-restore: retries absorb
    // the timeouts, survivors adopt the dead host's chunks, and the state
    // is still bit-exact.
    let (model_cfg, snap, inner) = checkpointed_snapshot();
    let store = FlakyStore::failing_reads(inner, FailureMode::Every(6));
    let sharded = restore_sharded_with_failures(
        &store,
        "job",
        CheckpointId(0),
        &model_cfg,
        &options(4, 4),
        Duration::ZERO,
        Some(HostKill {
            host: 0,
            after_chunks: 1,
        }),
    )
    .expect("retries + re-sharding must both engage");
    assert_eq!(sharded.report.state, snap.model);
    assert_eq!(sharded.killed_hosts, vec![0]);
    assert!(sharded.breakdown.rescheduled_chunks > 0);
}
