//! The §4.1 reader/trainer gap-avoidance protocol, verified end to end:
//! after any crash/restore, the sample stream the model sees is exactly the
//! stream an uninterrupted run would have seen — no sample trained twice,
//! none skipped.

use check_n_run::model::{DlrmModel, ModelConfig};
use check_n_run::reader::{ReaderConfig, ReaderMaster, ReaderState};
use check_n_run::workload::{DatasetSpec, SyntheticDataset};
use std::collections::HashMap;

fn spec() -> DatasetSpec {
    DatasetSpec::tiny(1234)
}

/// Drives a reader through interval cycles, logging every consumed batch
/// index, with a simulated crash at `crash_after_intervals`.
fn consumed_indices_with_crash(
    intervals: u64,
    interval_len: u64,
    crash_after_intervals: u64,
) -> Vec<u64> {
    let ds = SyntheticDataset::new(spec());
    let mut consumed = Vec::new();

    // Phase 1: run until the crash point, checkpointing reader state at
    // each boundary.
    let reader = ReaderMaster::new(ds.clone(), ReaderConfig::default());
    let mut checkpointed_state = ReaderState::fresh();
    for _ in 0..crash_after_intervals {
        reader.extend_budget(interval_len);
        for _ in 0..interval_len {
            consumed.push(reader.next_batch().index);
        }
        checkpointed_state = reader.collect_state();
    }
    // Mid-interval progress that the crash destroys: consumed but the model
    // state it produced is rolled back, so we roll the log back too.
    reader.extend_budget(interval_len / 2);
    for _ in 0..interval_len / 2 {
        let _ = reader.next_batch();
    }
    drop(reader); // crash

    // Phase 2: restore from the checkpointed reader state and finish.
    let reader = ReaderMaster::from_state(ds, checkpointed_state, ReaderConfig::default());
    for _ in crash_after_intervals..intervals {
        reader.extend_budget(interval_len);
        for _ in 0..interval_len {
            consumed.push(reader.next_batch().index);
        }
        let _ = reader.collect_state();
    }
    consumed
}

#[test]
fn crash_replays_exactly_the_reference_stream() {
    let stream = consumed_indices_with_crash(6, 10, 3);
    let reference: Vec<u64> = (0..60).collect();
    assert_eq!(stream, reference, "stream differs after crash/restore");
}

#[test]
fn no_batch_is_trained_twice_or_skipped() {
    let stream = consumed_indices_with_crash(5, 8, 2);
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for b in &stream {
        *counts.entry(*b).or_default() += 1;
    }
    for (batch, count) in counts {
        assert_eq!(count, 1, "batch {batch} trained {count} times");
    }
}

/// Trains two models — one through a crash, one straight through — feeding
/// both from real reader tiers. Bit-identical results prove the protocol
/// composes with actual training, not just index bookkeeping.
#[test]
fn training_through_reader_crash_is_bit_exact() {
    let s = spec();
    let ds = SyntheticDataset::new(s.clone());
    let cfg = ModelConfig::for_dataset(&s, 8);

    // Reference: 40 batches straight.
    let mut reference = DlrmModel::new(cfg.clone());
    {
        let reader = ReaderMaster::new(ds.clone(), ReaderConfig::default());
        reader.extend_budget(40);
        for _ in 0..40 {
            reference.train_batch(&reader.next_batch(), |_, _| {});
        }
    }

    // Crashing run: 20 batches, snapshot model+reader, 7 more batches
    // (lost), crash, restore, 20 batches.
    let mut model = DlrmModel::new(cfg.clone());
    let reader = ReaderMaster::new(ds.clone(), ReaderConfig::default());
    reader.extend_budget(20);
    for _ in 0..20 {
        model.train_batch(&reader.next_batch(), |_, _| {});
    }
    let reader_ckpt = reader.collect_state();
    let model_ckpt = check_n_run::model::ModelState::extract(&model);
    reader.extend_budget(7);
    for _ in 0..7 {
        model.train_batch(&reader.next_batch(), |_, _| {});
    }
    drop(reader); // crash: in-flight work vanishes

    let mut model = DlrmModel::new(cfg);
    model_ckpt.restore(&mut model);
    let reader = ReaderMaster::from_state(ds, reader_ckpt, ReaderConfig::default());
    reader.extend_budget(20);
    for _ in 0..20 {
        model.train_batch(&reader.next_batch(), |_, _| {});
    }

    assert_eq!(model.state_hash(), reference.state_hash());
}

/// The budget is a hard protocol boundary: there are never in-flight batches
/// when state is collected, no matter the worker/queue configuration.
#[test]
fn no_in_flight_batches_at_collection_under_any_config() {
    let s = spec();
    for workers in [1usize, 2, 4] {
        for queue_depth in [1usize, 3, 16] {
            let reader = ReaderMaster::new(
                SyntheticDataset::new(s.clone()),
                ReaderConfig {
                    workers,
                    queue_depth,
                },
            );
            for _ in 0..3 {
                reader.extend_budget(5);
                for _ in 0..5 {
                    let _ = reader.next_batch();
                }
                let st = reader.collect_state();
                assert_eq!(
                    reader.in_flight(),
                    0,
                    "workers={workers} depth={queue_depth}: in-flight at checkpoint"
                );
                assert_eq!(st.next_batch % 5, 0);
            }
        }
    }
}
