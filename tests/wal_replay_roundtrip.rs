//! Property test: crash-consistent delta-WAL replay.
//!
//! For a checkpoint plus any prefix of logged iterations, crashing at *any*
//! byte of the live WAL segment — a frame boundary or mid-frame — must
//! yield a restored model bit-identical to a serial training reference run
//! to the replayed iteration, across writer host counts 1, 2, and 4. The
//! clean prefix is everything; nothing is ever decoded from the torn tail.

use check_n_run::prelude::*;
use check_n_run::storage::wal::is_wal_segment_key;
use proptest::prelude::*;

fn spec() -> DatasetSpec {
    DatasetSpec::tiny(101)
}

/// Serially trains a fresh model on batches `0..n` — the ground truth any
/// checkpoint + WAL-replay recovery must reproduce exactly.
fn reference_state_hash(n: u64) -> u64 {
    let ds = SyntheticDataset::new(spec());
    let mut model = check_n_run::model::DlrmModel::new(ModelConfig::for_dataset(&spec(), 8));
    for i in 0..n {
        model.train_batch(&ds.batch(i), |_, _| {});
    }
    model.state_hash()
}

proptest! {
    /// Crash the WAL at an arbitrary byte offset; the restore must land on
    /// the clean prefix and match serial training exactly.
    #[test]
    fn crash_anywhere_replays_bit_identically(
        hosts_idx in 0usize..3,
        extra in 1u64..4,
        cut_frac in 0.0f64..1.0,
    ) {
        let hosts = [1usize, 2, 4][hosts_idx];
        let mut e = EngineBuilder::new(spec(), ModelConfig::for_dataset(&spec(), 8))
            .checkpoint_every_batches(5)
            .cluster_shape(1, 2)
            .writer_hosts(hosts)
            .delta_wal(DeltaWalConfig::default())
            .build()
            .unwrap();
        // Checkpoint at 5, then `extra` WAL-logged iterations.
        e.train_batches(5 + extra).unwrap();

        // Crash: the newest segment survives only up to an arbitrary byte.
        let mut wal_keys: Vec<String> = e
            .controller()
            .live_keys()
            .into_iter()
            .filter(|k| is_wal_segment_key(k))
            .collect();
        wal_keys.sort();
        let key = wal_keys.last().expect("a live WAL segment").clone();
        let buf = e.store().get(&key).unwrap();
        let cut = (buf.len() as f64 * cut_frac) as usize;
        e.store().put(&key, buf.slice(..cut)).unwrap();

        e.simulate_failure_and_restore().unwrap();
        let r = e.stats().resumes.last().unwrap().clone();
        // The clean prefix: some leading subsequence of the logged
        // iterations, never more, and the loss is counted exactly.
        prop_assert!(r.wal_replayed_iterations <= extra);
        prop_assert_eq!(r.lost_iterations, extra - r.wal_replayed_iterations);
        let iteration = e.trainer().model().iteration();
        prop_assert_eq!(iteration, 5 + r.wal_replayed_iterations);
        let expected_point = if r.wal_replayed_iterations > 0 {
            RestorePoint::WalTip
        } else {
            RestorePoint::Checkpoint
        };
        prop_assert_eq!(r.restore_point, expected_point);
        // Bit-identical to serial training run to the same iteration.
        prop_assert_eq!(
            e.trainer().model().state_hash(),
            reference_state_hash(iteration),
            "hosts={} extra={} cut={}", hosts, extra, cut
        );
    }

    /// With the log intact (a crash exactly at the synced tail), replay
    /// recovers every logged iteration regardless of writer sharding.
    #[test]
    fn intact_log_replays_to_the_tip(
        hosts_idx in 0usize..3,
        extra in 1u64..4,
    ) {
        let hosts = [1usize, 2, 4][hosts_idx];
        let mut e = EngineBuilder::new(spec(), ModelConfig::for_dataset(&spec(), 8))
            .checkpoint_every_batches(5)
            .cluster_shape(1, 2)
            .writer_hosts(hosts)
            .delta_wal(DeltaWalConfig::default())
            .build()
            .unwrap();
        e.train_batches(5 + extra).unwrap();
        let tip = e.trainer().model().state_hash();
        e.simulate_failure_and_restore().unwrap();
        let r = e.stats().resumes.last().unwrap().clone();
        prop_assert_eq!(r.wal_replayed_iterations, extra);
        prop_assert_eq!(r.lost_iterations, 0);
        prop_assert_eq!(e.trainer().model().iteration(), 5 + extra);
        prop_assert_eq!(e.trainer().model().state_hash(), tip);
        prop_assert_eq!(e.trainer().model().state_hash(), reference_state_hash(5 + extra));
    }
}
