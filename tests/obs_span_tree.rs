//! Span-tree integrity, property-tested end to end at the engine level:
//! for random datasets, restore modes (eager/lazy), reader-host counts
//! (1/2/4), and WAL tails (present/absent), every restore emits a
//! well-formed span tree — unique ids, parents recorded before children,
//! children contained in their parents, synchronous siblings never
//! summing past their parent — whose root `restore` span's duration
//! equals `ResumeStats::time_to_resume` exactly, with the synchronous
//! phase children tiling the root.

use check_n_run::core::{DeltaWalConfig, EngineBuilder};
use check_n_run::model::ModelConfig;
use check_n_run::obs::span::validate_tree;
use check_n_run::obs::{names, SpanKind};
use check_n_run::storage::RemoteConfig;
use check_n_run::workload::DatasetSpec;
use proptest::prelude::*;
use std::time::Duration;

/// A 4-writer-shard engine over a slow store (so phase durations are
/// visible in simulated time), optionally WAL-enabled.
fn builder(seed: u64, reader_hosts: usize, wal: bool) -> EngineBuilder {
    let spec = DatasetSpec::tiny(seed);
    let model_cfg = ModelConfig::for_dataset(&spec, 8);
    let mut b = EngineBuilder::new(spec, model_cfg)
        .checkpoint_every_batches(5)
        .cluster_shape(1, 2)
        .writer_hosts(4)
        .reader_hosts(reader_hosts)
        .remote_config(RemoteConfig {
            bandwidth_bytes_per_sec: 64.0 * 1024.0,
            base_latency: Duration::from_micros(100),
            replication: 1,
            channels: 2,
        });
    if wal {
        b = b.delta_wal(DeltaWalConfig::default());
    }
    b
}

proptest! {
    /// Every (mode × hosts × WAL) combination produces a valid span tree
    /// whose restore root is exactly `time_to_resume` and whose phase
    /// children tile it.
    #[test]
    fn every_restore_emits_a_well_formed_span_tree(
        seed in any::<u64>(),
        hosts_idx in 0usize..3,
        wal in any::<bool>(),
        lazy in any::<bool>(),
        tail in 2u64..5,
    ) {
        let reader_hosts = [1usize, 2, 4][hosts_idx];
        let mut b = builder(seed, reader_hosts, wal);
        if lazy {
            b = b.lazy_restore(0.05);
        }
        let mut e = b.build().unwrap();
        e.train_batches(10 + tail).unwrap();
        e.simulate_failure_and_restore().unwrap();
        e.train_batches(2).unwrap();
        e.drain_lazy_restore().unwrap();

        let spans = e.obs().spans();
        validate_tree(&spans)
            .unwrap_or_else(|err| panic!("span tree invariants: {err}"));

        // The restore root's duration is time_to_resume by construction.
        let resume = e.stats().resumes.last().unwrap();
        let root = spans
            .iter()
            .find(|s| s.name == names::SPAN_RESTORE)
            .expect("restore emits a root span");
        prop_assert_eq!(root.duration(), resume.time_to_resume);

        // The five synchronous phase children tile the root exactly; the
        // zero-length first-batch marker changes nothing.
        let sync_children: Vec<_> = spans
            .iter()
            .filter(|s| s.parent == Some(root.id) && s.kind == SpanKind::Sync)
            .collect();
        let phase_sum: Duration = sync_children.iter().map(|s| s.duration()).sum();
        prop_assert_eq!(phase_sum, root.duration());
        for name in [
            names::SPAN_RESTORE_DRAIN_WAIT,
            names::SPAN_RESTORE_FETCH,
            names::SPAN_RESTORE_DECODE,
            names::SPAN_RESTORE_MERGE,
            names::SPAN_RESTORE_WAL_REPLAY,
        ] {
            prop_assert_eq!(
                sync_children.iter().filter(|s| s.name == name).count(),
                1,
                "exactly one {} phase under the root",
                name
            );
        }

        // One concurrent fetch-host child per active reader host, nested
        // under the fetch phase.
        let fetch = spans
            .iter()
            .find(|s| s.name == names::SPAN_RESTORE_FETCH)
            .unwrap();
        let host_spans = spans
            .iter()
            .filter(|s| s.name == names::SPAN_RESTORE_FETCH_HOST)
            .collect::<Vec<_>>();
        prop_assert!(!host_spans.is_empty());
        prop_assert!(host_spans.len() <= reader_hosts);
        for h in &host_spans {
            prop_assert_eq!(h.parent, Some(fetch.id));
            prop_assert_eq!(h.kind, SpanKind::Concurrent);
        }

        // The exporter accepts everything the engine emitted.
        let trace = check_n_run::obs::export::chrome_trace_jsonl(&spans);
        check_n_run::obs::export::validate_trace_jsonl(&trace)
            .unwrap_or_else(|err| panic!("chrome trace schema: {err}"));
    }
}
