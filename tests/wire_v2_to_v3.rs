//! Wire-format migration: golden v2 (pre-envelope) checkpoint bytes,
//! committed under `tests/data/`, must restore bit-identically through the
//! v3 reader — the reader sniffs the envelope magic and passes legacy
//! objects straight to the v2 decoders. A scrub sweep then upgrades the
//! legacy objects to the enveloped format *in place*, after which the same
//! checkpoint still restores bit-identically.
//!
//! The golden file is produced by the `#[ignore]`d regeneration test at
//! the bottom (`cargo test --test wire_v2_to_v3 -- --ignored`), which
//! writes a deterministic checkpoint and strips the envelopes off with the
//! still-available bare v2 encoders. Regenerate it whenever the v2 wire
//! encoding itself intentionally changes — never by hand.

use check_n_run::cluster::SimClock;
use check_n_run::core::config::CheckpointConfig;
use check_n_run::core::manifest::{CheckpointId, CheckpointKind, Manifest};
use check_n_run::core::policy::{Decision, TrackerAction};
use check_n_run::core::read::{restore_sharded, RestoreOptions};
use check_n_run::core::restore::restore;
use check_n_run::core::snapshot::SnapshotTaker;
use check_n_run::core::write::CheckpointWriter;
use check_n_run::core::TrainingSnapshot;
use check_n_run::model::{DlrmModel, ModelConfig, ShardPlan};
use check_n_run::quant::QuantScheme;
use check_n_run::reader::ReaderState;
use check_n_run::storage::{envelope, InMemoryStore, ObjectStore, Scrubber};
use check_n_run::trainer::{Trainer, TrainerConfig};
use check_n_run::workload::{DatasetSpec, SyntheticDataset, TableAccessSpec};
use std::time::Duration;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/v2_checkpoint.bin"
);

/// The deterministic model + snapshot the golden checkpoint was taken
/// from. Everything here is seeded, so re-deriving it in the verifying
/// test yields the exact FP32 state the golden bytes must restore to.
fn golden_snapshot() -> (ModelConfig, TrainingSnapshot) {
    let spec = DatasetSpec {
        seed: 20220404, // Check-N-Run's NSDI '22 presentation date
        batch_size: 16,
        dense_dim: 4,
        tables: vec![
            TableAccessSpec::new(150, 2, 1.0),
            TableAccessSpec::new(60, 1, 0.9),
        ],
        concept_seed: None,
    };
    let ds = SyntheticDataset::new(spec.clone());
    let model_cfg = ModelConfig::for_dataset(&spec, 8);
    let model = DlrmModel::new(model_cfg.clone());
    let mut trainer = Trainer::new(model, SimClock::new(), TrainerConfig::default());
    for i in 0..4 {
        trainer.train_one(&ds.batch(i));
    }
    let snap = SnapshotTaker::new(ShardPlan::balanced(&model_cfg, 1, 2)).take(
        &mut trainer,
        ReaderState::at(4),
        Decision {
            kind: CheckpointKind::Full,
            tracker: TrackerAction::SnapshotReset,
        },
        &CheckpointConfig::default(),
    );
    (model_cfg, snap)
}

fn write_cfg() -> CheckpointConfig {
    CheckpointConfig {
        chunk_rows: 48,
        writer_hosts: 2,
        ..CheckpointConfig::default()
    }
}

/// Loads the golden file into a fresh store. Returns the object count.
fn load_golden(store: &InMemoryStore) -> usize {
    let blob = std::fs::read(GOLDEN).expect(
        "tests/data/v2_checkpoint.bin missing — regenerate with \
         `cargo test --test wire_v2_to_v3 -- --ignored`",
    );
    let mut at = 0usize;
    let mut count = 0usize;
    let read_u32 = |buf: &[u8], at: usize| {
        u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) as usize
    };
    while at < blob.len() {
        let klen = read_u32(&blob, at);
        let key = std::str::from_utf8(&blob[at + 4..at + 4 + klen])
            .expect("utf-8 key")
            .to_string();
        at += 4 + klen;
        let vlen = read_u32(&blob, at);
        let value = blob[at + 4..at + 4 + vlen].to_vec();
        at += 4 + vlen;
        assert!(
            !envelope::is_enveloped(&value),
            "golden object {key} must be bare v2 bytes"
        );
        store.put(&key, value.into()).unwrap();
        count += 1;
    }
    assert!(count >= 3, "golden holds a manifest and several chunks");
    count
}

/// Legacy v2 objects restore bit-identically through the v3 reader, both
/// on the serial path and across sharded reader hosts: the magic sniff
/// routes them to the v2 decoders untouched.
#[test]
fn v2_golden_restores_bit_identically_through_the_v3_reader() {
    let (model_cfg, snap) = golden_snapshot();
    let store = InMemoryStore::new();
    load_golden(&store);
    let serial = restore(&store, "job", CheckpointId(0), &model_cfg).expect("serial restore");
    assert_eq!(
        serial.state, snap.model,
        "FP32 full restore of the golden bytes is bit-exact"
    );
    for reader_hosts in [1usize, 2, 4] {
        let sharded = restore_sharded(
            &store,
            "job",
            CheckpointId(0),
            &model_cfg,
            &RestoreOptions {
                reader_hosts,
                ..RestoreOptions::default()
            },
            Duration::ZERO,
        )
        .expect("sharded restore");
        assert_eq!(sharded.report.state, snap.model, "hosts={reader_hosts}");
        assert_eq!(sharded.breakdown.corruption_detected, 0);
    }
}

/// A scrub sweep upgrades every legacy object to the enveloped format in
/// place — manifests get the manifest flag — and the checkpoint still
/// restores bit-identically afterwards. A second sweep finds only clean,
/// already-enveloped objects.
#[test]
fn scrubber_upgrades_v2_objects_in_place() {
    let (model_cfg, snap) = golden_snapshot();
    let store = InMemoryStore::new();
    let count = load_golden(&store) as u64;
    let keys = store.list("job/").unwrap();

    let report = Scrubber::new(&store).sweep(keys.iter().map(String::as_str));
    let f = report.findings();
    assert_eq!(f.scanned, count);
    assert_eq!(f.legacy_found, count, "every golden object is legacy");
    assert_eq!(f.upgraded, count, "every legacy object upgraded in place");
    assert_eq!(f.corrupt_detected, 0);

    for key in &keys {
        let data = store.get(key).unwrap();
        let (flags, _) = envelope::unwrap(&data).expect("upgraded object has a valid envelope");
        assert_eq!(
            flags & envelope::FLAG_MANIFEST != 0,
            key.ends_with("/manifest"),
            "manifest flag set exactly on manifests ({key})"
        );
    }

    // Still bit-identical: serial and sharded (the sharded planner sizes
    // ranges off the stored object, which grew by the envelope header).
    let serial = restore(&store, "job", CheckpointId(0), &model_cfg).expect("serial restore");
    assert_eq!(serial.state, snap.model);
    let sharded = restore_sharded(
        &store,
        "job",
        CheckpointId(0),
        &model_cfg,
        &RestoreOptions {
            reader_hosts: 2,
            ..RestoreOptions::default()
        },
        Duration::ZERO,
    )
    .expect("sharded restore after upgrade");
    assert_eq!(sharded.report.state, snap.model);

    let second = Scrubber::new(&store).sweep(keys.iter().map(String::as_str));
    let f2 = second.findings();
    assert_eq!(f2.legacy_found, 0, "nothing left to upgrade");
    assert_eq!(f2.clean, count);
}

/// Regenerates `tests/data/v2_checkpoint.bin`: writes the deterministic
/// checkpoint with today's (v3) writer, then strips the envelope off every
/// object with the bare v2 encoders — chunk sizes in the manifest are
/// rewritten to the raw payload sizes a real v2 writer would have
/// recorded. Run explicitly with `-- --ignored`; never edit the file by
/// hand.
#[test]
#[ignore = "writes tests/data/v2_checkpoint.bin; run with -- --ignored to regenerate"]
fn regenerate_golden_v2_checkpoint() {
    let (_model_cfg, snap) = golden_snapshot();
    let store = InMemoryStore::new();
    CheckpointWriter::new(&store, "job")
        .write(&snap, CheckpointId(0), None, QuantScheme::Fp32, &write_cfg())
        .expect("write");

    let mut entries: Vec<(String, Vec<u8>)> = Vec::new();
    for key in store.list("job/").unwrap() {
        let data = store.get(&key).unwrap();
        let payload = envelope::open(&data).expect("v3 writers envelope everything");
        if key.ends_with("/manifest") {
            let mut m = Manifest::decode(payload).expect("manifest");
            // A v2 writer recorded raw chunk sizes; ours recorded the
            // enveloped sizes. Shrink them all by the header.
            for c in &mut m.chunks {
                c.bytes -= envelope::HEADER_LEN as u64;
            }
            for s in &mut m.shards {
                s.bytes -= envelope::HEADER_LEN as u64 * s.chunks as u64;
            }
            m.payload_bytes = m.chunks.iter().map(|c| c.bytes).sum();
            entries.push((key, m.encode()));
        } else {
            entries.push((key, payload.to_vec()));
        }
    }
    entries.sort();

    let mut out = Vec::new();
    for (key, value) in &entries {
        out.extend_from_slice(&(key.len() as u32).to_le_bytes());
        out.extend_from_slice(key.as_bytes());
        out.extend_from_slice(&(value.len() as u32).to_le_bytes());
        out.extend_from_slice(value);
    }
    std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data")).unwrap();
    std::fs::write(GOLDEN, out).unwrap();
}
