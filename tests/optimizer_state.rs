//! Optimizer state through the full checkpoint stack (§4.1: "The trainer
//! state consists of all the model layers …, the optimizer state, and the
//! relevant metrics"). Row-wise AdaGrad accumulators must survive
//! checkpoint/restore bit-exactly, or the restored run diverges even though
//! the weights match.

use check_n_run::core::{CheckpointConfig, EngineBuilder, PolicyKind, QuantMode};
use check_n_run::model::{ModelConfig, OptimizerConfig};
use check_n_run::workload::{DatasetSpec, TableAccessSpec};

fn spec(seed: u64) -> DatasetSpec {
    DatasetSpec {
        seed,
        batch_size: 16,
        dense_dim: 4,
        tables: vec![
            TableAccessSpec::new(1500, 2, 1.0),
            TableAccessSpec::new(800, 1, 0.9),
        ],
        concept_seed: None,
    }
}

fn adagrad_engine(seed: u64, policy: PolicyKind) -> check_n_run::core::Engine {
    let s = spec(seed);
    let mut cfg = ModelConfig::for_dataset(&s, 8);
    cfg.optimizer = OptimizerConfig::RowWiseAdagrad {
        lr: 0.05,
        eps: 1e-6,
    };
    EngineBuilder::new(s, cfg)
        .checkpoint_config(CheckpointConfig {
            interval_batches: 20,
            policy,
            quant: QuantMode::None,
            chunk_rows: 128,
            ..CheckpointConfig::default()
        })
        .build()
        .expect("engine")
}

#[test]
fn adagrad_state_survives_crash_bit_exactly() {
    for policy in [PolicyKind::OneShot, PolicyKind::Consecutive] {
        let mut crashed = adagrad_engine(3, policy);
        crashed.train_batches(60).unwrap();
        crashed.train_batches(7).unwrap(); // lost progress
        crashed.simulate_failure_and_restore().unwrap();
        crashed.train_batches(40).unwrap();

        let mut reference = adagrad_engine(3, policy);
        reference.train_batches(100).unwrap();

        assert_eq!(
            crashed.trainer().model().state_hash(),
            reference.trainer().model().state_hash(),
            "{policy:?}: AdaGrad accumulators diverged across restore"
        );
    }
}

#[test]
fn dropping_optimizer_state_would_be_detected() {
    // The state hash covers the accumulators: the bit-exactness test above
    // is only meaningful if a lost accumulator would actually flip it.
    let mut e = adagrad_engine(9, PolicyKind::OneShot);
    e.train_batches(20).unwrap();
    e.simulate_failure_and_restore().unwrap();
    let h = e.trainer().model().state_hash();
    let table = &mut e.trainer_mut().model_mut().tables_mut()[0];
    table
        .adagrad_mut()
        .expect("AdaGrad model carries accumulators")[0] += 1.0;
    assert_ne!(e.trainer().model().state_hash(), h);
}
