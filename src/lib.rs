//! # Check-N-Run
//!
//! A from-scratch Rust reproduction of **"Check-N-Run: a Checkpointing System
//! for Training Deep Learning Recommendation Models"** (Eisenman et al.,
//! NSDI 2022).
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`model`] — DLRM-lite recommendation model (embedding tables, MLPs,
//!   optimizers, device sharding).
//! * [`workload`] — deterministic synthetic CTR datasets with Zipfian sparse
//!   access.
//! * [`quant`] — checkpoint quantization (uniform symmetric/asymmetric,
//!   k-means, adaptive asymmetric) with bit-packing.
//! * [`tracking`] — lock-free modified-row tracking for incremental
//!   checkpoints.
//! * [`storage`] — object storage backends including a bandwidth-simulated
//!   remote store.
//! * [`cluster`] — simulated clock, failure models, and recovery accounting.
//! * [`reader`] — the distributed reader tier with exact batch budgets.
//! * [`trainer`] — the synchronous training loop.
//! * [`core`] — the Check-N-Run engine itself: snapshots, incremental
//!   policies, quantized chunked writing, restore, and the controller.
//!
//! ## Quickstart
//!
//! ```no_run
//! use check_n_run::prelude::*;
//!
//! let spec = DatasetSpec::medium(42);
//! let model_cfg = ModelConfig::for_dataset(&spec, 16);
//! let mut engine = EngineBuilder::new(spec, model_cfg)
//!     .checkpoint_every_batches(100)
//!     .policy(PolicyKind::Intermittent)
//!     .quantization(QuantMode::Dynamic { expected_restores: 1 })
//!     .build()
//!     .expect("engine construction");
//! engine.train_batches(500).expect("training");
//! ```

pub use cnr_cluster as cluster;
pub use cnr_core as core;
pub use cnr_model as model;
pub use cnr_obs as obs;
pub use cnr_quant as quant;
pub use cnr_reader as reader;
pub use cnr_storage as storage;
pub use cnr_tracking as tracking;
pub use cnr_trainer as trainer;
pub use cnr_workload as workload;

/// Commonly used items, importable with a single `use`.
pub mod prelude {
    pub use cnr_cluster::clock::SimClock;
    pub use cnr_cluster::failure::{FailureModel, HostKill};
    pub use cnr_cluster::recovery::{RecoveryCoordinator, RestorePoint, ResumeBreakdown};
    pub use cnr_core::config::{CheckpointConfig, DeltaWalConfig, PolicyKind, QuantMode};
    pub use cnr_core::engine::{Engine, EngineBuilder};
    pub use cnr_core::read::{FetchScheduler, FetchStatus, RestoreOptions, ShardedRestore};
    pub use cnr_core::write::{CheckpointWriter, UploadScheduler, UploadStatus};
    pub use cnr_model::config::ModelConfig;
    pub use cnr_quant::QuantScheme;
    pub use cnr_storage::{
        EvictionPolicy, FailureMode, FlakyStore, InMemoryStore, MultipartUpload, ObjectStore,
        RemoteConfig, SimulatedRemoteStore, TieredStore, TornWriteSpec,
    };
    pub use cnr_workload::{DatasetSpec, SyntheticDataset, TableAccessSpec};
}
